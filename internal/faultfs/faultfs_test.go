package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"reflect"
	"strings"
	"testing"
	"testing/fstest"
	"time"
)

func corpus(n int) fstest.MapFS {
	m := fstest.MapFS{}
	for i := 0; i < n; i++ {
		name := string(rune('a'+i)) + ".csv"
		m[name] = &fstest.MapFile{Data: []byte("hour,instances\n0,5\n1,6\n2,7\n3,8\n")}
	}
	return m
}

func TestPassThrough(t *testing.T) {
	inner := corpus(3)
	f := New(inner)
	data, err := fs.ReadFile(f, "a.csv")
	if err != nil {
		t.Fatal(err)
	}
	if want := inner["a.csv"].Data; !reflect.DeepEqual(data, want) {
		t.Errorf("pass-through read = %q, want %q", data, want)
	}
	if err := fstest.TestFS(f, "a.csv", "b.csv", "c.csv"); err != nil {
		t.Errorf("clean FS fails fstest: %v", err)
	}
}

func TestKindOpenError(t *testing.T) {
	f := New(corpus(2))
	f.Inject("a.csv", KindOpenError)
	_, err := f.Open("a.csv")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	var pe *fs.PathError
	if !errors.As(err, &pe) || pe.Path != "a.csv" {
		t.Errorf("err = %v, want *fs.PathError naming a.csv", err)
	}
	if _, err := fs.ReadFile(f, "b.csv"); err != nil {
		t.Errorf("non-faulted sibling failed: %v", err)
	}
}

func TestKindReadError(t *testing.T) {
	inner := corpus(1)
	f := New(inner)
	f.Inject("a.csv", KindReadError)
	file, err := f.Open("a.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	data, err := io.ReadAll(file)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("ReadAll err = %v, want ErrInjected", err)
	}
	if want := inner["a.csv"].Data; len(data) != len(want)/2 {
		t.Errorf("read %d bytes before the injected error, want %d", len(data), len(want)/2)
	}
}

func TestKindTruncate(t *testing.T) {
	inner := corpus(1)
	f := New(inner)
	f.Inject("a.csv", KindTruncate)
	data, err := fs.ReadFile(f, "a.csv")
	if err != nil {
		t.Fatalf("truncation must be silent, got %v", err)
	}
	want := inner["a.csv"].Data
	if len(data) != len(want)/2 || !reflect.DeepEqual(data, want[:len(want)/2]) {
		t.Errorf("truncated read = %q, want first half of %q", data, want)
	}
}

func TestKindCorruptRow(t *testing.T) {
	inner := corpus(1)
	f := New(inner)
	f.Inject("a.csv", KindCorruptRow)
	data, err := fs.ReadFile(f, "a.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(inner["a.csv"].Data) {
		t.Errorf("corruption changed length: %d != %d", len(data), len(inner["a.csv"].Data))
	}
	if !strings.Contains(string(data), "!faultfs-corrupt-row!") {
		t.Errorf("corrupt row not spliced: %q", data)
	}
}

func TestInjectNDeterministic(t *testing.T) {
	const seed, n = 42, 4
	a := New(corpus(10))
	gotA, err := a.InjectN(seed, n, KindTruncate, KindCorruptRow)
	if err != nil {
		t.Fatal(err)
	}
	b := New(corpus(10))
	gotB, err := b.InjectN(seed, n, KindTruncate, KindCorruptRow)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA, gotB) {
		t.Errorf("same seed picked different files: %v vs %v", gotA, gotB)
	}
	if len(gotA) != n || !reflect.DeepEqual(a.Faults(), b.Faults()) {
		t.Errorf("fault maps differ: %v vs %v", a.Faults(), b.Faults())
	}
	if !sortedUnique(gotA) {
		t.Errorf("picked names not sorted and unique: %v", gotA)
	}
	c := New(corpus(10))
	gotC, err := c.InjectN(seed+1, n, KindTruncate, KindCorruptRow)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(gotA, gotC) {
		t.Logf("seeds %d and %d picked the same files (possible, but suspicious): %v", seed, seed+1, gotA)
	}
}

func sortedUnique(names []string) bool {
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			return false
		}
	}
	return true
}

func TestInjectNErrors(t *testing.T) {
	f := New(corpus(3))
	if _, err := f.InjectN(1, 4, KindTruncate); err == nil {
		t.Error("n above file count accepted")
	}
	if _, err := f.InjectN(1, 0, KindTruncate); err == nil {
		t.Error("n = 0 accepted")
	}
	if _, err := f.InjectN(1, 1); err == nil {
		t.Error("empty kind list accepted")
	}
}

func TestKindString(t *testing.T) {
	for kind, want := range map[Kind]string{
		KindOpenError:  "open-error",
		KindReadError:  "read-error",
		KindTruncate:   "truncate",
		KindCorruptRow: "corrupt-row",
		KindStall:      "stall",
		Kind(99):       "Kind(99)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(kind), got, want)
		}
	}
}

func TestKindStallServesExactBytes(t *testing.T) {
	inner := corpus(2)
	f := New(inner)
	var slept []time.Duration
	f.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	f.InjectStall("a.csv", 5*time.Millisecond)
	data, err := fs.ReadFile(f, "a.csv")
	if err != nil {
		t.Fatal(err)
	}
	if want := inner["a.csv"].Data; !reflect.DeepEqual(data, want) {
		t.Errorf("stalled read = %q, want the unmodified bytes %q", data, want)
	}
	if len(slept) == 0 {
		t.Fatal("no stall slept: the sleep seam was never invoked")
	}
	for _, d := range slept {
		if d != 5*time.Millisecond {
			t.Errorf("slept %v, want the configured 5ms", d)
		}
	}
	if d := f.StallDelay("a.csv"); d != 5*time.Millisecond {
		t.Errorf("StallDelay = %v, want 5ms", d)
	}
	if d := f.StallDelay("b.csv"); d != 0 {
		t.Errorf("StallDelay of clean file = %v, want 0", d)
	}
}

func TestKindStallZeroDelayAndPlainInject(t *testing.T) {
	f := New(corpus(1))
	called := false
	f.SetSleep(func(time.Duration) { called = true })
	// Inject without InjectStall: KindStall with zero delay must serve
	// the file without ever sleeping.
	f.Inject("a.csv", KindStall)
	if _, err := fs.ReadFile(f, "a.csv"); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("zero-delay stall slept anyway")
	}
}

func TestInjectStallNDeterministic(t *testing.T) {
	const seed, n = 7, 3
	max := 20 * time.Millisecond
	a := New(corpus(8))
	gotA, err := a.InjectStallN(seed, n, max)
	if err != nil {
		t.Fatal(err)
	}
	b := New(corpus(8))
	gotB, err := b.InjectStallN(seed, n, max)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA, gotB) {
		t.Errorf("same seed assigned different stalls: %v vs %v", gotA, gotB)
	}
	if len(gotA) != n {
		t.Fatalf("assigned %d stalls, want %d", len(gotA), n)
	}
	for name, d := range gotA {
		if d <= 0 || d > max {
			t.Errorf("%s: delay %v outside (0, %v]", name, d, max)
		}
		if a.Faults()[name] != KindStall {
			t.Errorf("%s: fault kind = %v, want stall", name, a.Faults()[name])
		}
	}
	if _, err := New(corpus(8)).InjectStallN(seed, n, 0); err == nil {
		t.Error("maxDelay = 0 accepted")
	}
}

func TestSetSleepNilRestoresDefault(t *testing.T) {
	f := New(corpus(1))
	f.SetSleep(nil)
	f.InjectStall("a.csv", time.Nanosecond)
	if _, err := fs.ReadFile(f, "a.csv"); err != nil {
		t.Fatalf("read through default sleeper: %v", err)
	}
}
