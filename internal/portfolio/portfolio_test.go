package portfolio

import (
	"math"
	"strings"
	"testing"

	"rimarket/internal/core"
	"rimarket/internal/marketplace"
	"rimarket/internal/pricing"
	"rimarket/internal/purchasing"
	"rimarket/internal/simulate"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// card: p = 1, R = 20, alpha = 0.25, T = 40 (theta = 2).
func card(name string) pricing.InstanceType {
	return pricing.InstanceType{
		Name:           name,
		OnDemandHourly: 1.0,
		Upfront:        20,
		ReservedHourly: 0.25,
		PeriodHours:    40,
	}
}

func a3t4Factory(t *testing.T) func(pricing.InstanceType) (simulate.SellingPolicy, error) {
	t.Helper()
	return func(it pricing.InstanceType) (simulate.SellingPolicy, error) {
		return core.NewA3T4(it, 0.8)
	}
}

func idleService(name string) Service {
	demand := make([]int, 40)
	demand[0] = 1 // one busy hour triggers one reservation, then idle
	return Service{Name: name, Instance: card(name + ".large"), Demand: demand}
}

func busyService(name string) Service {
	demand := make([]int, 40)
	for i := range demand {
		demand[i] = 2
	}
	return Service{Name: name, Instance: card(name + ".large"), Demand: demand}
}

func TestServiceValidate(t *testing.T) {
	tests := []struct {
		name   string
		svc    Service
		wantOK bool
	}{
		{name: "valid", svc: busyService("web"), wantOK: true},
		{name: "no name", svc: Service{Instance: card("x"), Demand: []int{1}}},
		{name: "bad instance", svc: Service{Name: "x", Demand: []int{1}}},
		{name: "empty demand", svc: Service{Name: "x", Instance: card("x")}},
		{name: "negative demand", svc: Service{Name: "x", Instance: card("x"), Demand: []int{-1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.svc.Validate()
			if tt.wantOK != (err == nil) {
				t.Errorf("Validate = %v, wantOK %v", err, tt.wantOK)
			}
		})
	}
}

func TestEvaluateValidation(t *testing.T) {
	cfg := Config{SellingDiscount: 0.8}
	if _, err := Evaluate(nil, cfg); err == nil {
		t.Error("empty portfolio accepted")
	}
	if _, err := Evaluate([]Service{idleService("a"), idleService("a")}, cfg); err == nil {
		t.Error("duplicate service accepted")
	}
	bad := idleService("a")
	bad.Demand[3] = -1
	if _, err := Evaluate([]Service{bad}, cfg); err == nil {
		t.Error("invalid service accepted")
	}
	if _, err := Evaluate([]Service{idleService("a")}, Config{SellingDiscount: 5}); err == nil {
		t.Error("invalid engine config accepted")
	}
}

func TestEvaluateIdlePortfolioSells(t *testing.T) {
	services := []Service{idleService("batch"), busyService("web")}
	cfg := Config{SellingDiscount: 0.8, Policy: a3t4Factory(t)}
	res, err := Evaluate(services, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Services) != 2 {
		t.Fatalf("services = %d", len(res.Services))
	}
	batch, web := res.Services[0], res.Services[1]
	if len(batch.SoldInstances) != 1 {
		t.Errorf("idle service sold %d, want 1", len(batch.SoldInstances))
	}
	// Sold at 3T/4 = age 30 of 40 -> 10 hours remaining.
	if len(batch.SoldInstances) == 1 && batch.SoldInstances[0] != 10 {
		t.Errorf("remaining = %d, want 10", batch.SoldInstances[0])
	}
	if batch.Savings() <= 0 {
		t.Errorf("idle service savings = %v, want positive", batch.Savings())
	}
	if len(web.SoldInstances) != 0 {
		t.Errorf("busy service sold %d, want 0", len(web.SoldInstances))
	}
	if !almostEqual(web.PolicyCost, web.KeepCost, 1e-9) {
		t.Errorf("busy service costs diverge: %v vs %v", web.PolicyCost, web.KeepCost)
	}
	if res.PolicyTotal() >= res.KeepTotal() {
		t.Errorf("portfolio did not save: %v vs %v", res.PolicyTotal(), res.KeepTotal())
	}
	if f := res.SavingsFraction(); f <= 0 || f >= 1 {
		t.Errorf("SavingsFraction = %v", f)
	}
}

func TestEvaluateNilPolicyIsBaseline(t *testing.T) {
	res, err := Evaluate([]Service{idleService("a")}, Config{SellingDiscount: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if res.SavingsFraction() != 0 {
		t.Errorf("baseline savings = %v, want 0", res.SavingsFraction())
	}
}

func TestEvaluateCustomPurchaser(t *testing.T) {
	svc := busyService("web")
	svc.Purchaser = purchasing.NewWangOnline(svc.Instance)
	res, err := Evaluate([]Service{svc}, Config{SellingDiscount: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	// Wang reserves later than AllReserved; with beta_wang = 20/(1*0.75)
	// = 26.7 h of on-demand per level, both levels reserve at hour 26.
	if res.Services[0].Reserved != 2 {
		t.Errorf("Reserved = %d, want 2", res.Services[0].Reserved)
	}
}

func TestEvaluatePolicyFactoryError(t *testing.T) {
	cfg := Config{
		SellingDiscount: 0.8,
		Policy: func(pricing.InstanceType) (simulate.SellingPolicy, error) {
			return core.NewA3T4(pricing.InstanceType{}, 0.8) // invalid card
		},
	}
	if _, err := Evaluate([]Service{idleService("a")}, cfg); err == nil {
		t.Error("factory error swallowed")
	}
}

func TestListOnMarket(t *testing.T) {
	services := []Service{idleService("batch"), idleService("etl")}
	cfg := Config{SellingDiscount: 0.8, Policy: a3t4Factory(t)}
	res, err := Evaluate(services, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := marketplace.New()
	if err != nil {
		t.Fatal(err)
	}
	listed, err := ListOnMarket(m, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if listed != 2 {
		t.Fatalf("listed = %d, want 2", listed)
	}
	open := m.OpenListings("batch.large")
	if len(open) != 1 {
		t.Fatalf("open = %d", len(open))
	}
	// Ask = a * R * remaining/T = 0.8 * 20 * 10/40 = 4.
	if !almostEqual(open[0].AskUpfront, 4, 1e-9) {
		t.Errorf("ask = %v, want 4", open[0].AskUpfront)
	}
	// Seller is the service name.
	if !strings.HasPrefix(open[0].Seller, "batch") {
		t.Errorf("seller = %q", open[0].Seller)
	}
	if _, err := ListOnMarket(m, res, 0); err == nil {
		t.Error("zero discount accepted")
	}
}
