// Package portfolio manages reserved-instance decisions across several
// services at once — the layer a downstream cost-management tool would
// build on. Each service has its own instance type, demand trace and
// reservation habit; the portfolio evaluates a selling policy per
// service, aggregates the spend against the Keep-Reserved baseline, and
// can list every sold reservation's remaining period on a marketplace.
package portfolio

import (
	"errors"
	"fmt"

	"rimarket/internal/marketplace"
	"rimarket/internal/pricing"
	"rimarket/internal/purchasing"
	"rimarket/internal/simulate"
)

// Service is one workload in the portfolio.
type Service struct {
	// Name identifies the service; it becomes the marketplace seller
	// name for its listings.
	Name string
	// Instance is the service's price card.
	Instance pricing.InstanceType
	// Demand is the service's hourly demand trace.
	Demand []int
	// Purchaser imitates the team's reservation habit. Nil defaults to
	// AllReserved (reserve to peak).
	Purchaser purchasing.Policy
}

// Validate reports whether the service is usable.
func (s Service) Validate() error {
	if s.Name == "" {
		return errors.New("portfolio: service has no name")
	}
	if err := s.Instance.Validate(); err != nil {
		return fmt.Errorf("portfolio: %s: %w", s.Name, err)
	}
	if len(s.Demand) == 0 {
		return fmt.Errorf("portfolio: %s: empty demand trace", s.Name)
	}
	for t, d := range s.Demand {
		if d < 0 {
			return fmt.Errorf("portfolio: %s: negative demand at hour %d", s.Name, t)
		}
	}
	return nil
}

// Config parameterizes a portfolio evaluation.
type Config struct {
	// SellingDiscount is the listing discount a applied by every service.
	SellingDiscount float64
	// MarketFee is the marketplace's cut of sale income.
	MarketFee float64
	// Policy builds the selling policy for a service's instance type.
	// Nil means Keep-Reserved everywhere (a pure baseline evaluation).
	Policy func(pricing.InstanceType) (simulate.SellingPolicy, error)
}

// ServiceResult is one service's evaluation.
type ServiceResult struct {
	// Name echoes the service.
	Name string
	// Instance echoes the service's price card.
	Instance pricing.InstanceType
	// Reserved is the number of instances the purchaser reserved.
	Reserved int
	// KeepCost is the Keep-Reserved baseline total.
	KeepCost float64
	// PolicyCost is the selling policy's total.
	PolicyCost float64
	// SoldInstances lists each sold instance's remaining hours at sale,
	// ready for marketplace listing.
	SoldInstances []int
}

// Savings returns KeepCost - PolicyCost.
func (r ServiceResult) Savings() float64 { return r.KeepCost - r.PolicyCost }

// Result is a completed portfolio evaluation.
type Result struct {
	// Services holds one result per service, in input order.
	Services []ServiceResult
}

// KeepTotal returns the portfolio-wide Keep-Reserved baseline.
func (r Result) KeepTotal() float64 {
	var total float64
	for _, s := range r.Services {
		total += s.KeepCost
	}
	return total
}

// PolicyTotal returns the portfolio-wide cost under the selling policy.
func (r Result) PolicyTotal() float64 {
	var total float64
	for _, s := range r.Services {
		total += s.PolicyCost
	}
	return total
}

// SavingsFraction returns 1 - PolicyTotal/KeepTotal (0 when the
// baseline is zero).
func (r Result) SavingsFraction() float64 {
	keep := r.KeepTotal()
	if keep == 0 {
		return 0
	}
	return 1 - r.PolicyTotal()/keep
}

// Evaluate plans reservations and runs the selling policy for every
// service.
func Evaluate(services []Service, cfg Config) (Result, error) {
	if len(services) == 0 {
		return Result{}, errors.New("portfolio: no services")
	}
	seen := make(map[string]bool, len(services))
	var out Result
	for _, svc := range services {
		if err := svc.Validate(); err != nil {
			return Result{}, err
		}
		if seen[svc.Name] {
			return Result{}, fmt.Errorf("portfolio: duplicate service %q", svc.Name)
		}
		seen[svc.Name] = true

		purchaser := svc.Purchaser
		if purchaser == nil {
			purchaser = purchasing.AllReserved{}
		}
		plan, err := purchasing.PlanReservations(svc.Demand, svc.Instance.PeriodHours, purchaser)
		if err != nil {
			return Result{}, fmt.Errorf("portfolio: %s: %w", svc.Name, err)
		}
		reserved := 0
		for _, n := range plan {
			reserved += n
		}

		engCfg := simulate.Config{
			Instance:        svc.Instance,
			SellingDiscount: cfg.SellingDiscount,
			MarketFee:       cfg.MarketFee,
		}
		keepRun, err := simulate.Run(svc.Demand, plan, engCfg, simulate.KeepReserved{})
		if err != nil {
			return Result{}, fmt.Errorf("portfolio: %s: %w", svc.Name, err)
		}

		policy := simulate.SellingPolicy(simulate.KeepReserved{})
		if cfg.Policy != nil {
			policy, err = cfg.Policy(svc.Instance)
			if err != nil {
				return Result{}, fmt.Errorf("portfolio: %s: %w", svc.Name, err)
			}
		}
		policyRun, err := simulate.Run(svc.Demand, plan, engCfg, policy)
		if err != nil {
			return Result{}, fmt.Errorf("portfolio: %s: %w", svc.Name, err)
		}

		sr := ServiceResult{
			Name:       svc.Name,
			Instance:   svc.Instance,
			Reserved:   reserved,
			KeepCost:   keepRun.Cost.Total(),
			PolicyCost: policyRun.Cost.Total(),
		}
		for _, inst := range policyRun.Instances {
			if inst.SoldAt < 0 {
				continue
			}
			sr.SoldInstances = append(sr.SoldInstances, inst.Start+svc.Instance.PeriodHours-inst.SoldAt)
		}
		out.Services = append(out.Services, sr)
	}
	return out, nil
}

// ListOnMarket lists every sold reservation's remaining period on the
// market at the given discount and returns the total number of
// listings created. Sellers are the service names.
func ListOnMarket(m *marketplace.Market, res Result, discount float64) (int, error) {
	listed := 0
	for _, svc := range res.Services {
		for _, remaining := range svc.SoldInstances {
			if _, err := m.ListAtDiscount(svc.Name, svc.Instance, remaining, discount); err != nil {
				return listed, fmt.Errorf("portfolio: list %s: %w", svc.Name, err)
			}
			listed++
		}
	}
	return listed, nil
}
