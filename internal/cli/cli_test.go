package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"testing"
)

func TestExitCode(t *testing.T) {
	tests := []struct {
		name string
		err  error
		want int
	}{
		{name: "nil", err: nil, want: ExitOK},
		{name: "plain error", err: errors.New("boom"), want: ExitError},
		{name: "partial", err: ErrPartial, want: ExitPartial},
		{name: "wrapped partial", err: fmt.Errorf("4 of 36 files skipped: %w", ErrPartial), want: ExitPartial},
		{name: "usage", err: Usagef("unknown flag"), want: ExitUsage},
		{name: "wrapped usage", err: fmt.Errorf("riexp: %w", Usagef("bad")), want: ExitUsage},
		{name: "help", err: flag.ErrHelp, want: ExitUsage},
	}
	for _, tc := range tests {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

func TestUsage(t *testing.T) {
	if Usage(nil) != nil {
		t.Error("Usage(nil) != nil")
	}
	cause := errors.New("flag provided but not defined")
	err := Usage(cause)
	if !errors.Is(err, cause) {
		t.Errorf("Usage does not unwrap to its cause: %v", err)
	}
	var ue *UsageError
	if !errors.As(err, &ue) || ue.Error() != cause.Error() {
		t.Errorf("Usage(%v) = %v", cause, err)
	}
}

func TestSignalContext(t *testing.T) {
	ctx, cancel := SignalContext()
	if err := ctx.Err(); err != nil {
		t.Fatalf("fresh signal context already done: %v", err)
	}
	cancel()
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Errorf("cancelled signal context: %v", ctx.Err())
	}
}
