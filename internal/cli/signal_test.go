package cli

import (
	"os"
	"syscall"
	"testing"
	"time"
)

// TestSignalContextTwoSignalContract pins the contract rid's drain
// path (and every binary's Ctrl-C handling) is built on: the first
// SIGINT only cancels the context — the process keeps running and
// drains — and the second hard-exits immediately with the partial
// exit code.
func TestSignalContextTwoSignalContract(t *testing.T) {
	exitCh := make(chan int, 1)
	ctx, stop := signalContext(func(code int) { exitCh <- code })
	defer stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("sending first SIGINT: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first signal did not cancel the context")
	}
	// The first signal must NOT exit: the whole point is a graceful
	// drain window.
	select {
	case code := <-exitCh:
		t.Fatalf("first signal exited with code %d; want graceful cancellation only", code)
	case <-time.After(50 * time.Millisecond):
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("sending second SIGINT: %v", err)
	}
	select {
	case code := <-exitCh:
		if code != ExitPartial {
			t.Fatalf("second signal exited with code %d, want ExitPartial (%d)", code, ExitPartial)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not hard-exit")
	}
}

// TestSignalContextStopWithoutSignal pins that stop alone cancels the
// context and unregisters the handler without ever exiting.
func TestSignalContextStopWithoutSignal(t *testing.T) {
	exitCh := make(chan int, 1)
	ctx, stop := signalContext(func(code int) { exitCh <- code })
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not cancel the context")
	}
	stop() // idempotent
	select {
	case code := <-exitCh:
		t.Fatalf("stop exited with code %d; stop must never exit", code)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestSignalContextSecondSignalAfterStop pins that a signal landing
// after stop (but delivered to a context whose first signal already
// fired) no longer reaches the exit seam: stop wins the race.
func TestSignalContextSecondSignalAfterStop(t *testing.T) {
	exitCh := make(chan int, 1)
	ctx, stop := signalContext(func(code int) { exitCh <- code })
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("sending SIGINT: %v", err)
	}
	<-ctx.Done()
	stop()
	// Give the watcher goroutine time to observe stopped and wind down;
	// a signal now would get default handling, so do not send one —
	// just assert the exit seam stayed untouched.
	select {
	case code := <-exitCh:
		t.Fatalf("exit seam fired with code %d after stop", code)
	case <-time.After(50 * time.Millisecond):
	}
}
