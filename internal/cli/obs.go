package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"rimarket/internal/obs"
)

// ObsFlags is the shared observability flag set: every binary that
// registers it gets the same -metrics/-pprof (and, for long-running
// commands, -progress) vocabulary, and the same session lifecycle via
// Start/Finish.
type ObsFlags struct {
	// Metrics is the run-manifest output path (-metrics=path.json).
	Metrics string
	// Progress enables the stderr progress ticker (-progress).
	Progress bool
	// Pprof is the listen address for live profiling (-pprof=addr).
	Pprof string
}

// Register installs all three flags on fs.
func (f *ObsFlags) Register(fs *flag.FlagSet) {
	f.RegisterBasic(fs)
	fs.BoolVar(&f.Progress, "progress", false, "print a progress line (cells/sec, ETA) to stderr every 2s")
}

// RegisterBasic installs -metrics and -pprof only — for commands with
// no grid fan-out, where a progress ticker has nothing to report.
func (f *ObsFlags) RegisterBasic(fs *flag.FlagSet) {
	fs.StringVar(&f.Metrics, "metrics", "", "write a run manifest (flags, seed, counters, timings) to this JSON `path`")
	fs.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof on this `address` (e.g. localhost:6060) for live profiling")
}

// enabled reports whether any observability was requested.
func (f *ObsFlags) enabled() bool {
	return f.Metrics != "" || f.Progress || f.Pprof != ""
}

// progressInterval is how often the -progress ticker prints.
const progressInterval = 2 * time.Second

// ObsSession is one binary invocation's observability: the metrics
// its context carries, the manifest written at exit, the progress
// ticker, and the pprof listener. With no observability flags set the
// session is inert and Finish just forwards the run error, so commands
// wire it unconditionally:
//
//	sess, err := obsFlags.Start("riexp", args, stderr)
//	if err != nil { return err }
//	err = run(sess.Context(ctx), ...)
//	return sess.Finish(err)
type ObsSession struct {
	tool         string
	metrics      *obs.Metrics
	manifest     *obs.Manifest
	manifestPath string
	stderr       io.Writer
	progress     *obs.Progress

	pprofLn  net.Listener
	pprofSrv *http.Server

	tickStop chan struct{}
	tickDone chan struct{}
}

// Start opens the session the flags describe. Progress lines go to
// stderr. A bad -pprof address (unparseable or unbindable) fails here,
// before any experiment work runs. tool and args are recorded in the
// manifest verbatim.
func (f *ObsFlags) Start(tool string, args []string, stderr io.Writer) (*ObsSession, error) {
	s := &ObsSession{tool: tool, stderr: stderr}
	if !f.enabled() {
		return s, nil
	}
	s.metrics = obs.New(obs.SystemClock)
	if f.Metrics != "" {
		s.manifest = obs.NewManifest(tool, args, obs.SystemClock)
		s.manifestPath = f.Metrics
	}
	if f.Pprof != "" {
		ln, err := net.Listen("tcp", f.Pprof)
		if err != nil {
			return nil, fmt.Errorf("pprof listen on %q: %w", f.Pprof, err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		s.pprofLn = ln
		s.pprofSrv = &http.Server{Handler: mux}
		srv := s.pprofSrv // local copy: shutdown nils the field concurrently
		//rilint:allow gojoin -- pprof listener is a sanctioned daemon; Finish closes the server, unblocking Serve.
		go func() {
			// Serve returns http.ErrServerClosed when Finish closes the
			// server; any other error just ends live profiling early.
			_ = srv.Serve(ln)
		}()
		fmt.Fprintf(stderr, "%s: pprof listening on http://%s/debug/pprof/\n", tool, ln.Addr())
	}
	if f.Progress {
		s.progress = obs.NewProgress(s.metrics)
		s.tickStop = make(chan struct{})
		s.tickDone = make(chan struct{})
		//rilint:allow gojoin -- progress ticker joins in Finish via tickStop/tickDone; the handshake spans methods, out of the analyzer's sight.
		go s.tick()
	}
	if s.manifest != nil {
		// Fail fast on an unwritable manifest path: probe by writing the
		// (not yet finalized) manifest now rather than discovering at the
		// end of an hour-long grid that the directory does not exist.
		if err := s.manifest.WriteFile(s.manifestPath); err != nil {
			s.shutdown()
			return nil, fmt.Errorf("metrics manifest: %w", err)
		}
	}
	return s, nil
}

// Run is the one-shot form of Start/Finish for commands with no
// mid-run manifest filling: it opens the session, runs fn with it, and
// finishes with fn's error.
func (f *ObsFlags) Run(tool string, args []string, stderr io.Writer, fn func(sess *ObsSession) error) error {
	sess, err := f.Start(tool, args, stderr)
	if err != nil {
		return err
	}
	return sess.Finish(fn(sess))
}

// tick prints a progress line every progressInterval until stopped.
// No context here on purpose: the ticker must keep reporting while the
// pipeline drains a cancellation, and Finish always stops it.
func (s *ObsSession) tick() {
	defer close(s.tickDone)
	t := time.NewTicker(progressInterval)
	defer t.Stop()
	for {
		select {
		case <-s.tickStop:
			return
		case <-t.C:
			fmt.Fprintf(s.stderr, "%s: %s\n", s.tool, s.progress.Line())
		}
	}
}

// Context returns ctx carrying the session's metrics (ctx unchanged
// for an inert session).
func (s *ObsSession) Context(ctx context.Context) context.Context {
	return obs.WithMetrics(ctx, s.metrics)
}

// Metrics returns the session's metrics, nil when observability is
// off.
func (s *ObsSession) Metrics() *obs.Metrics { return s.metrics }

// Manifest returns the run manifest for the tool to fill (Seed,
// Config, Trace), or nil when -metrics was not given.
func (s *ObsSession) Manifest() *obs.Manifest { return s.manifest }

// Engine returns the engine-metrics hook for simulate.Config, nil
// when observability is off.
func (s *ObsSession) Engine() *obs.EngineMetrics { return s.metrics.EngineHook() }

// PprofAddr returns the bound pprof address ("" when -pprof is off) —
// the actual address, so -pprof=localhost:0 is testable.
func (s *ObsSession) PprofAddr() string {
	if s.pprofLn == nil {
		return ""
	}
	return s.pprofLn.Addr().String()
}

// shutdown stops the ticker and pprof server.
func (s *ObsSession) shutdown() {
	if s.tickStop != nil {
		close(s.tickStop)
		<-s.tickDone
		s.tickStop = nil
	}
	if s.pprofSrv != nil {
		s.pprofSrv.Close()
		s.pprofSrv = nil
	}
}

// Finish ends the session: stops the ticker (printing one final
// progress line so short runs still report), shuts down pprof, and
// finalizes and writes the manifest with the run's outcome. It returns
// runErr, joined with the manifest write error if that also failed —
// the run error keeps precedence in ExitCode either way.
func (s *ObsSession) Finish(runErr error) error {
	s.shutdown()
	if s.progress != nil {
		fmt.Fprintf(s.stderr, "%s: %s\n", s.tool, s.progress.Line())
	}
	if s.manifest == nil {
		return runErr
	}
	s.manifest.FillBuildInfo()
	s.manifest.CaptureMem()
	errText := ""
	if runErr != nil {
		errText = runErr.Error()
	}
	s.manifest.Finalize(obs.SystemClock, s.metrics, ExitCode(runErr), errText)
	if werr := s.manifest.WriteFile(s.manifestPath); werr != nil {
		return errors.Join(runErr, fmt.Errorf("metrics manifest: %w", werr))
	}
	return runErr
}
