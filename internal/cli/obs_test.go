package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rimarket/internal/obs"
)

func TestObsFlagsRegister(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var f ObsFlags
	f.Register(fs)
	if err := fs.Parse([]string{"-metrics", "m.json", "-progress", "-pprof", "localhost:0"}); err != nil {
		t.Fatal(err)
	}
	if f.Metrics != "m.json" || !f.Progress || f.Pprof != "localhost:0" {
		t.Fatalf("parsed flags = %+v", f)
	}

	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	fs2.SetOutput(io.Discard)
	var f2 ObsFlags
	f2.RegisterBasic(fs2)
	if err := fs2.Parse([]string{"-progress"}); err == nil {
		t.Fatal("RegisterBasic should not define -progress")
	}
}

func TestObsSessionInert(t *testing.T) {
	var f ObsFlags
	sess, err := f.Start("ritest", nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if sess.Context(ctx) != ctx {
		t.Error("inert session should return the context unchanged")
	}
	if sess.Metrics() != nil || sess.Manifest() != nil || sess.Engine() != nil || sess.PprofAddr() != "" {
		t.Error("inert session exposes live components")
	}
	sentinel := errors.New("boom")
	if got := sess.Finish(sentinel); got != sentinel {
		t.Errorf("Finish = %v, want the run error unchanged", got)
	}
}

func TestObsSessionManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	f := ObsFlags{Metrics: path}
	args := []string{"-experiment", "cohort"}
	sess, err := f.Start("ritest", args, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// The probe write happens at Start, so a crash mid-run still leaves
	// a (non-finalized) manifest behind.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("manifest not written at Start: %v", err)
	}

	m := obs.FromContext(sess.Context(context.Background()))
	if m == nil {
		t.Fatal("session context carries no metrics")
	}
	m.JobsTotal.Add(10)
	m.JobsDone.Add(10)
	sess.Manifest().Seed = 2018

	if err := sess.Finish(nil); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var mf obs.Manifest
	if err := json.Unmarshal(b, &mf); err != nil {
		t.Fatal(err)
	}
	if mf.Tool != "ritest" || mf.Seed != 2018 || mf.Outcome.ExitCode != ExitOK {
		t.Errorf("manifest = tool %q seed %d exit %d", mf.Tool, mf.Seed, mf.Outcome.ExitCode)
	}
	if len(mf.Args) != 2 || mf.Args[0] != "-experiment" {
		t.Errorf("manifest args = %v", mf.Args)
	}
	if mf.GoVersion == "" || mf.Mem == nil {
		t.Error("finalized manifest missing build info or mem stats")
	}
	if mf.Metrics == nil || mf.Metrics.JobsDone != 10 {
		t.Errorf("manifest metrics = %+v", mf.Metrics)
	}
	if mf.End.Before(mf.Start) || mf.WallNs < 0 {
		t.Errorf("manifest times: start %v end %v wall %d", mf.Start, mf.End, mf.WallNs)
	}
}

func TestObsSessionManifestErrorOutcome(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	f := ObsFlags{Metrics: path}
	sess, err := f.Start("ritest", nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	runErr := fmt.Errorf("trace load: %w", ErrPartial)
	if got := sess.Finish(runErr); got != runErr {
		t.Errorf("Finish = %v, want the run error", got)
	}
	b, _ := os.ReadFile(path)
	var mf obs.Manifest
	if err := json.Unmarshal(b, &mf); err != nil {
		t.Fatal(err)
	}
	if mf.Outcome.ExitCode != ExitPartial || !strings.Contains(mf.Outcome.Error, "partial") {
		t.Errorf("outcome = %+v, want partial exit with error text", mf.Outcome)
	}
}

func TestObsSessionBadManifestPath(t *testing.T) {
	f := ObsFlags{Metrics: filepath.Join(t.TempDir(), "no", "dir", "m.json")}
	if _, err := f.Start("ritest", nil, io.Discard); err == nil {
		t.Fatal("unwritable -metrics path should fail at Start")
	}
}

func TestObsSessionPprof(t *testing.T) {
	f := ObsFlags{Pprof: "127.0.0.1:0"}
	sess, err := f.Start("ritest", nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	addr := sess.PprofAddr()
	if addr == "" {
		t.Fatal("pprof session reports no address")
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index unreachable: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("pprof index: status %d body %.80s", resp.StatusCode, body)
	}
	if err := sess.Finish(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/debug/pprof/"); err == nil {
		t.Error("pprof server still serving after Finish")
	}
}

func TestObsSessionBadPprofAddr(t *testing.T) {
	f := ObsFlags{Pprof: "not-a-valid-listen-address:99999"}
	if _, err := f.Start("ritest", nil, io.Discard); err == nil {
		t.Fatal("bad -pprof address should fail at Start")
	}
}

func TestObsSessionProgress(t *testing.T) {
	var buf bytes.Buffer
	f := ObsFlags{Progress: true}
	sess, err := f.Start("ritest", nil, &buf)
	if err != nil {
		t.Fatal(err)
	}
	m := sess.Metrics()
	m.JobsTotal.Add(4)
	m.JobsDone.Add(4)
	// Don't wait for the 2s ticker: Finish always prints a final line.
	if err := sess.Finish(nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ritest: ") || !strings.Contains(out, "jobs 4/4") {
		t.Errorf("progress output = %q", out)
	}
}
