// Package cli is the shared process plumbing of the rimarket binaries:
// one exit-code vocabulary, one error classification, and one signal
// wiring, so every command fails the same way and scripts driving the
// tools can branch on status codes instead of scraping stderr.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Exit codes shared by every binary. riexp documents them in its
// -help output; the other commands use the same vocabulary.
const (
	// ExitOK: the run completed.
	ExitOK = 0
	// ExitError: the run failed (engine error, bad input file, ...).
	ExitError = 1
	// ExitUsage: the command line itself was wrong.
	ExitUsage = 2
	// ExitPartial: the run completed, but on partial inputs — e.g. a
	// best-effort trace load skipped files. Results were produced and
	// are trustworthy for the inputs that loaded; the caller decides
	// whether partial coverage is acceptable.
	ExitPartial = 3
)

// ErrPartial marks a run that completed on partial inputs. Wrap it
// with context (fmt.Errorf("...: %w", cli.ErrPartial)) and return it
// from a command's run function; ExitCode maps it to ExitPartial.
var ErrPartial = errors.New("completed with partial inputs")

// UsageError marks command-line misuse; ExitCode maps it to ExitUsage.
type UsageError struct{ Err error }

func (e *UsageError) Error() string { return e.Err.Error() }
func (e *UsageError) Unwrap() error { return e.Err }

// Usage wraps err as a UsageError; it returns nil for a nil err.
func Usage(err error) error {
	if err == nil {
		return nil
	}
	return &UsageError{Err: err}
}

// Usagef builds a UsageError from a format string.
func Usagef(format string, args ...any) error {
	return &UsageError{Err: fmt.Errorf(format, args...)}
}

// ExitCode maps a run function's error to the process exit code.
func ExitCode(err error) int {
	var ue *UsageError
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, ErrPartial):
		return ExitPartial
	case errors.As(err, &ue), errors.Is(err, flag.ErrHelp):
		return ExitUsage
	default:
		return ExitError
	}
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM.
// The two-signal contract every binary shares (and the rid daemon's
// drain path depends on — see DESIGN.md §4.7):
//
//   - the FIRST signal cancels the context, and nothing else: the
//     pipeline drains gracefully, servers complete admitted requests,
//     spill stores flush, and the process exits through its normal
//     error path;
//   - the SECOND signal hard-exits the process immediately with
//     ExitPartial — the operator asked twice, waiting any longer would
//     be insubordination, and code 3 is honest about what happened:
//     whatever was flushed before the second signal is usable, the
//     rest never completed.
//
// Calling the returned stop function unregisters the handler and
// releases its goroutine; after stop, signals get Go's default
// handling again.
func SignalContext() (context.Context, context.CancelFunc) {
	return signalContext(os.Exit)
}

// signalContext is SignalContext with the process-exit seam injectable
// so the second-signal contract is testable in-process.
func signalContext(exit func(int)) (context.Context, context.CancelFunc) {
	//rilint:allow ctxrule -- signalContext mints the binaries' one process-root context; every library path receives it as a parameter.
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	stopped := make(chan struct{})
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(stopped)
			cancel()
		})
	}
	//rilint:allow gojoin -- signal watcher lives until stop() closes stopped; the caller's deferred stop is its join.
	go func() {
		select {
		case <-ch:
			cancel()
		case <-stopped:
			return
		}
		select {
		case <-ch:
			exit(ExitPartial)
		case <-stopped:
		}
	}()
	return ctx, stop
}
