// Package trade simulates reserved-instance marketplace dynamics over
// time: sellers list the remaining periods their selling algorithms
// shed, buyers arrive hour by hour, the order book ages (remaining
// periods shrink, asks get re-capped, stale listings expire), and the
// session reports whether listings actually clear and at what realized
// income.
//
// The paper's cost model Eq. (1) books sale income the moment the
// selling algorithm decides — implicitly assuming a buyer exists. This
// package quantifies that assumption: with a given buyer arrival rate,
// what fraction of listings sell before expiry, how long do they wait,
// and how much of the assumed income is realized?
package trade

import (
	"fmt"
	"sort"

	"rimarket/internal/marketplace"
	"rimarket/internal/pricing"
)

// SellEvent is one reservation put up for sale during a simulation.
type SellEvent struct {
	// Hour is the simulation hour the sale decision happened.
	Hour int
	// Seller names the selling user.
	Seller string
	// Instance is the reservation's price card.
	Instance pricing.InstanceType
	// RemainingHours is the unexpired period at the decision hour.
	RemainingHours int
}

// Config parameterizes a market session.
type Config struct {
	// ListingDiscount is the fraction of the prorated cap sellers ask
	// (the paper's a).
	ListingDiscount float64
	// MarketFee is the marketplace's cut (Amazon: 0.12).
	MarketFee float64
	// BuyerRate is the mean number of buyer arrivals per hour; each
	// buyer purchases one instance of a uniformly chosen listed type.
	BuyerRate float64
	// Horizon is the session length in hours; 0 derives it from the
	// last sell event plus the longest remaining period.
	Horizon int
	// Seed makes arrivals reproducible.
	Seed int64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.ListingDiscount <= 0 || c.ListingDiscount > 1 {
		return fmt.Errorf("trade: listing discount %v outside (0, 1]", c.ListingDiscount)
	}
	if c.MarketFee < 0 || c.MarketFee >= 1 {
		return fmt.Errorf("trade: market fee %v outside [0, 1)", c.MarketFee)
	}
	if c.BuyerRate < 0 {
		return fmt.Errorf("trade: buyer rate %v negative", c.BuyerRate)
	}
	if c.Horizon < 0 {
		return fmt.Errorf("trade: horizon %d negative", c.Horizon)
	}
	return nil
}

// Stats summarizes a completed session.
type Stats struct {
	// Listed, Sold and Expired count listings through their outcomes;
	// OpenAtEnd is what remained on the book at the horizon.
	Listed, Sold, Expired, OpenAtEnd int
	// SellerIncome is the total after-fee income sellers realized.
	SellerIncome float64
	// AssumedIncome is what Eq. (1) would have booked: an instant sale
	// at the listing ask (after fee) for every sell event.
	AssumedIncome float64
	// FeeRevenue is the marketplace's total cut.
	FeeRevenue float64
	// BuyerSurplus is the total discount buyers captured: the prorated
	// fair value of each purchased remaining period minus the price
	// paid. It is why the marketplace clears — buyers get reserved-rate
	// hours below the prorated upfront.
	BuyerSurplus float64
	// MeanHoursToSale averages the wait from listing to sale over sold
	// listings.
	MeanHoursToSale float64
	// RealizedFraction is SellerIncome / AssumedIncome (1 when every
	// listing sells instantly at its initial ask; lower when listings
	// wait — asks decay with the cap — or expire unsold).
	RealizedFraction float64
}

// Run replays the sell events through a live marketplace session.
func Run(events []SellEvent, cfg Config) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	if len(events) == 0 {
		return Stats{}, fmt.Errorf("trade: no sell events")
	}
	session, err := newSession(events, cfg)
	if err != nil {
		return Stats{}, err
	}
	for hour := 0; hour < session.horizon; hour++ {
		if err := session.step(hour); err != nil {
			return Stats{}, err
		}
	}
	return session.finish(), nil
}

// session is the shared hour-stepped market state behind Run and
// RunWithBuyer.
type session struct {
	cfg       Config
	sorted    []SellEvent
	horizon   int
	market    *marketplace.Market
	stats     Stats
	listedAt  map[marketplace.ListingID]int
	types     []string
	seenType  map[string]bool
	nextEvent int
}

func newSession(events []SellEvent, cfg Config) (*session, error) {
	sorted := append([]SellEvent(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Hour < sorted[j].Hour })

	horizon := cfg.Horizon
	if horizon == 0 {
		for _, ev := range sorted {
			// +1 so the final aging step that expires the longest-lived
			// listing still runs.
			if end := ev.Hour + ev.RemainingHours + 1; end > horizon {
				horizon = end
			}
		}
	}
	for i, ev := range sorted {
		if ev.Hour < 0 || ev.RemainingHours <= 0 {
			return nil, fmt.Errorf("trade: event %d: invalid hour %d / remaining %d", i, ev.Hour, ev.RemainingHours)
		}
	}
	m, err := marketplace.New(marketplace.WithFee(cfg.MarketFee))
	if err != nil {
		return nil, err
	}
	return &session{
		cfg:      cfg,
		sorted:   sorted,
		horizon:  horizon,
		market:   m,
		listedAt: make(map[marketplace.ListingID]int),
		seenType: make(map[string]bool, 4),
	}, nil
}

// step advances the session by one hour: age the book, list the hour's
// sell events, and run the background buyer arrivals.
func (s *session) step(hour int) error {
	// Age the book by one hour (skipped at hour 0: nothing listed).
	if hour > 0 {
		expired, err := s.market.Advance(1)
		if err != nil {
			return err
		}
		s.stats.Expired += expired
	}

	// List this hour's sell events.
	for s.nextEvent < len(s.sorted) && s.sorted[s.nextEvent].Hour == hour {
		ev := s.sorted[s.nextEvent]
		s.nextEvent++
		if ev.RemainingHours >= ev.Instance.PeriodHours {
			return fmt.Errorf("trade: event at hour %d: remaining %d not below period %d",
				ev.Hour, ev.RemainingHours, ev.Instance.PeriodHours)
		}
		id, err := s.market.ListAtDiscount(ev.Seller, ev.Instance, ev.RemainingHours, s.cfg.ListingDiscount)
		if err != nil {
			return err
		}
		s.listedAt[id] = hour
		s.stats.Listed++
		ask := s.cfg.ListingDiscount * marketplace.ProratedCap(ev.Instance, ev.RemainingHours)
		s.stats.AssumedIncome += ask * (1 - s.cfg.MarketFee)
		if !s.seenType[ev.Instance.Name] {
			s.seenType[ev.Instance.Name] = true
			s.types = append(s.types, ev.Instance.Name)
		}
	}

	// Background buyers arrive. The per-hour count is deterministic in
	// the seed: rate r yields floor(r) arrivals plus one more when the
	// hour's hash draw is below frac(r).
	arrivals := int(s.cfg.BuyerRate)
	if frac := s.cfg.BuyerRate - float64(arrivals); frac > 0 {
		if hashUniform(uint64(s.cfg.Seed), uint64(hour), 0) < frac {
			arrivals++
		}
	}
	for b := 0; b < arrivals && len(s.types) > 0; b++ {
		// Pick a listed type uniformly; skip silently if its book is
		// empty this hour (the buyer found nothing to buy).
		pick := s.types[int(hashUniform(uint64(s.cfg.Seed), uint64(hour), uint64(b+1))*float64(len(s.types)))%len(s.types)]
		sales, err := s.market.Buy(fmt.Sprintf("buyer-%d-%d", hour, b), pick, 1)
		if err != nil {
			continue // ErrNoListings: demand went unfilled this hour
		}
		for _, sale := range sales {
			s.recordSale(hour, sale)
		}
	}
	return nil
}

// recordSale books a completed purchase into the session statistics.
func (s *session) recordSale(hour int, sale marketplace.Sale) {
	s.stats.Sold++
	s.stats.SellerIncome += sale.SellerProceeds
	s.stats.FeeRevenue += sale.Fee
	s.stats.BuyerSurplus += marketplace.ProratedCap(sale.Listing.Instance, sale.Listing.RemainingHours) - sale.PricePaid
	s.stats.MeanHoursToSale += float64(hour - s.listedAt[sale.Listing.ID])
}

// finish closes the session and returns its statistics.
func (s *session) finish() Stats {
	s.stats.OpenAtEnd = s.market.OpenCount()
	if s.stats.Sold > 0 {
		s.stats.MeanHoursToSale /= float64(s.stats.Sold)
	}
	if s.stats.AssumedIncome > 0 {
		s.stats.RealizedFraction = s.stats.SellerIncome / s.stats.AssumedIncome
	}
	return s.stats
}

// hashUniform maps (seed, hour, draw) to [0, 1) deterministically.
func hashUniform(words ...uint64) float64 {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, w := range words {
		h ^= w + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return float64(h>>11) / float64(1<<53)
}
