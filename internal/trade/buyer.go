package trade

import (
	"fmt"

	"rimarket/internal/marketplace"
	"rimarket/internal/pricing"
	"rimarket/internal/purchasing"
)

// BuyerStats reports the designated smart buyer's outcome in a market
// session: how many reservations it sourced used instead of fresh, and
// what it saved by doing so. This is the demand side of the paper's
// marketplace — the buyer "pays the upfront fee to obtain the ownership
// of this instance and then ... can enjoy the cheaper hourly rate in
// the instance's remaining reservation period" (Section III.B).
type BuyerStats struct {
	// FreshReservations counts reservations bought new at the full
	// upfront R.
	FreshReservations int
	// UsedPurchases counts reservations sourced from the marketplace.
	UsedPurchases int
	// UpfrontSpent is the total upfront paid (fresh R plus used asks).
	UpfrontSpent float64
	// Savings is the prorated fair value bought minus the price paid for
	// used purchases: what the buyer saved versus paying the pro-rata
	// upfront for the same remaining coverage.
	Savings float64
}

// RunWithBuyer replays the sell events through a market session with
// one designated smart buyer alongside the background buyer flow. The
// smart buyer replays its own demand trace through the ICAC'13 online
// purchasing algorithm; whenever that algorithm decides to reserve, the
// buyer first checks the marketplace and takes the cheapest listing if
// its per-remaining-hour price beats a fresh reservation's R/T.
//
// The returned Stats describe the whole market (including the smart
// buyer's purchases); BuyerStats describe the smart buyer alone.
func RunWithBuyer(events []SellEvent, cfg Config, buyerDemand []int, it pricing.InstanceType) (Stats, BuyerStats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, BuyerStats{}, err
	}
	if err := it.Validate(); err != nil {
		return Stats{}, BuyerStats{}, err
	}
	if len(events) == 0 {
		return Stats{}, BuyerStats{}, fmt.Errorf("trade: no sell events")
	}
	if len(buyerDemand) == 0 {
		return Stats{}, BuyerStats{}, fmt.Errorf("trade: empty buyer demand")
	}

	// Pre-plan the smart buyer's reservation hours with the online
	// purchaser; the market decides fresh-vs-used at execution time.
	plan, err := purchasing.PlanReservations(buyerDemand, it.PeriodHours, purchasing.NewWangOnline(it))
	if err != nil {
		return Stats{}, BuyerStats{}, err
	}

	session, err := newSession(events, cfg)
	if err != nil {
		return Stats{}, BuyerStats{}, err
	}
	var buyer BuyerStats
	// cheaperThanFresh compares per-remaining-hour prices by cross
	// multiplication with a relative tolerance, so a re-capped ask
	// (exactly at fresh parity up to floating point) is not "cheaper".
	cheaperThanFresh := func(ask float64, remaining int) bool {
		return ask*float64(it.PeriodHours) < it.Upfront*float64(remaining)*(1-1e-9)
	}
	for hour := 0; hour < session.horizon; hour++ {
		if err := session.step(hour); err != nil {
			return Stats{}, BuyerStats{}, err
		}
		if hour >= len(plan) {
			continue
		}
		for i := 0; i < plan[hour]; i++ {
			used := false
			if open := session.market.OpenListings(it.Name); len(open) > 0 {
				best := open[0] // cheapest first
				if cheaperThanFresh(best.AskUpfront, best.RemainingHours) {
					sales, err := session.market.Buy("smart-buyer", it.Name, 1)
					if err == nil && len(sales) == 1 {
						s := sales[0]
						session.recordSale(hour, s)
						buyer.UsedPurchases++
						buyer.UpfrontSpent += s.PricePaid
						buyer.Savings += marketplace.ProratedCap(s.Listing.Instance, s.Listing.RemainingHours) - s.PricePaid
						used = true
					}
				}
			}
			if !used {
				buyer.FreshReservations++
				buyer.UpfrontSpent += it.Upfront
			}
		}
	}
	return session.finish(), buyer, nil
}
