package trade

import (
	"math"
	"testing"
	"testing/quick"

	"rimarket/internal/pricing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func card() pricing.InstanceType {
	return pricing.InstanceType{
		Name:           "trade.large",
		OnDemandHourly: 1.0,
		Upfront:        100,
		ReservedHourly: 0.25,
		PeriodHours:    400,
	}
}

func defaultConfig() Config {
	return Config{
		ListingDiscount: 0.8,
		MarketFee:       0.12,
		BuyerRate:       1,
		Seed:            7,
	}
}

func TestConfigValidate(t *testing.T) {
	good := defaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero discount", mutate: func(c *Config) { c.ListingDiscount = 0 }},
		{name: "discount above 1", mutate: func(c *Config) { c.ListingDiscount = 1.5 }},
		{name: "fee 1", mutate: func(c *Config) { c.MarketFee = 1 }},
		{name: "negative rate", mutate: func(c *Config) { c.BuyerRate = -1 }},
		{name: "negative horizon", mutate: func(c *Config) { c.Horizon = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := defaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestRunValidation(t *testing.T) {
	cfg := defaultConfig()
	if _, err := Run(nil, cfg); err == nil {
		t.Error("no events accepted")
	}
	bad := []SellEvent{{Hour: -1, Seller: "s", Instance: card(), RemainingHours: 10}}
	if _, err := Run(bad, cfg); err == nil {
		t.Error("negative hour accepted")
	}
	bad = []SellEvent{{Hour: 0, Seller: "s", Instance: card(), RemainingHours: 0}}
	if _, err := Run(bad, cfg); err == nil {
		t.Error("zero remaining accepted")
	}
	bad = []SellEvent{{Hour: 0, Seller: "s", Instance: card(), RemainingHours: 400}}
	if _, err := Run(bad, cfg); err == nil {
		t.Error("remaining == period accepted")
	}
}

func TestRunInstantSaleRealizesAssumedIncome(t *testing.T) {
	// One listing, a buyer every hour: it sells in the listing hour at
	// the initial ask, so realized == assumed income exactly.
	it := card()
	events := []SellEvent{{Hour: 0, Seller: "alice", Instance: it, RemainingHours: 100}}
	cfg := defaultConfig()
	cfg.BuyerRate = 1
	cfg.Horizon = 10
	stats, err := Run(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Listed != 1 || stats.Sold != 1 || stats.Expired != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	wantAsk := 0.8 * 100 * 100.0 / 400.0 // a * R * rem/T = 20
	if !almostEqual(stats.SellerIncome, wantAsk*0.88, 1e-9) {
		t.Errorf("SellerIncome = %v, want %v", stats.SellerIncome, wantAsk*0.88)
	}
	if !almostEqual(stats.RealizedFraction, 1, 1e-9) {
		t.Errorf("RealizedFraction = %v, want 1", stats.RealizedFraction)
	}
	if stats.MeanHoursToSale != 0 {
		t.Errorf("MeanHoursToSale = %v, want 0", stats.MeanHoursToSale)
	}
}

func TestRunNoBuyersEverythingExpires(t *testing.T) {
	it := card()
	events := []SellEvent{
		{Hour: 0, Seller: "a", Instance: it, RemainingHours: 50},
		{Hour: 5, Seller: "b", Instance: it, RemainingHours: 30},
	}
	cfg := defaultConfig()
	cfg.BuyerRate = 0
	stats, err := Run(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sold != 0 {
		t.Errorf("Sold = %d, want 0", stats.Sold)
	}
	if stats.Expired != 2 {
		t.Errorf("Expired = %d, want 2", stats.Expired)
	}
	if stats.RealizedFraction != 0 {
		t.Errorf("RealizedFraction = %v, want 0", stats.RealizedFraction)
	}
}

func TestRunDelayedSaleRealizesLess(t *testing.T) {
	// A thin market: the listing waits ~10 hours, long enough that its
	// ask decays below the initial one (re-capping bites once the wait
	// exceeds (1-a) of the remaining period), so the realized fraction
	// drops below 1.
	it := card()
	events := []SellEvent{{Hour: 0, Seller: "a", Instance: it, RemainingHours: 20}}
	cfg := defaultConfig()
	cfg.BuyerRate = 0.1
	cfg.Horizon = 25
	stats, err := Run(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sold != 1 {
		t.Fatalf("Sold = %d (stats %+v)", stats.Sold, stats)
	}
	if stats.MeanHoursToSale <= 0 {
		t.Errorf("MeanHoursToSale = %v, want positive wait", stats.MeanHoursToSale)
	}
	if stats.RealizedFraction >= 1 {
		t.Errorf("RealizedFraction = %v, want < 1 for a delayed sale", stats.RealizedFraction)
	}
	if stats.RealizedFraction <= 0.5 {
		t.Errorf("RealizedFraction = %v suspiciously low for a short wait", stats.RealizedFraction)
	}
}

func TestRunDeterministic(t *testing.T) {
	it := card()
	events := []SellEvent{
		{Hour: 0, Seller: "a", Instance: it, RemainingHours: 120},
		{Hour: 3, Seller: "b", Instance: it, RemainingHours: 80},
		{Hour: 9, Seller: "c", Instance: it, RemainingHours: 300},
	}
	cfg := defaultConfig()
	cfg.BuyerRate = 0.5
	s1, err := Run(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Run(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("same config differs: %+v vs %+v", s1, s2)
	}
}

// TestPropertyConservation: every listing ends exactly one way, and
// income accounting is consistent.
func TestPropertyConservation(t *testing.T) {
	it := card()
	f := func(raw []uint8, rateSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 30 {
			raw = raw[:30]
		}
		events := make([]SellEvent, 0, len(raw))
		for i, b := range raw {
			events = append(events, SellEvent{
				Hour:           int(b) % 50,
				Seller:         "s",
				Instance:       it,
				RemainingHours: 10 + int(b)%300,
			})
			_ = i
		}
		cfg := defaultConfig()
		cfg.BuyerRate = float64(rateSel%30) / 10
		stats, err := Run(events, cfg)
		if err != nil {
			return false
		}
		if stats.Listed != len(events) {
			return false
		}
		if stats.Sold+stats.Expired+stats.OpenAtEnd != stats.Listed {
			return false
		}
		if stats.SellerIncome < 0 || stats.FeeRevenue < 0 {
			return false
		}
		// Realized income can never exceed the instant-sale assumption:
		// asks only decay while waiting.
		return stats.SellerIncome <= stats.AssumedIncome+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunBuyerSurplus(t *testing.T) {
	// Listed at 80% of the cap and sold instantly: the buyer captures
	// exactly 20% of the prorated cap.
	it := card()
	events := []SellEvent{{Hour: 0, Seller: "a", Instance: it, RemainingHours: 100}}
	cfg := defaultConfig()
	cfg.BuyerRate = 1
	cfg.Horizon = 5
	stats, err := Run(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cap := it.Upfront * 100.0 / 400.0 // 25
	if !almostEqual(stats.BuyerSurplus, 0.2*cap, 1e-9) {
		t.Errorf("BuyerSurplus = %v, want %v", stats.BuyerSurplus, 0.2*cap)
	}
}
