package trade

import (
	"testing"

	"rimarket/internal/pricing"
)

func TestRunWithBuyerValidation(t *testing.T) {
	it := card()
	cfg := defaultConfig()
	events := []SellEvent{{Hour: 0, Seller: "a", Instance: it, RemainingHours: 100}}
	demand := make([]int, 50)
	if _, _, err := RunWithBuyer(nil, cfg, demand, it); err == nil {
		t.Error("no events accepted")
	}
	if _, _, err := RunWithBuyer(events, cfg, nil, it); err == nil {
		t.Error("empty buyer demand accepted")
	}
	bad := cfg
	bad.ListingDiscount = 0
	if _, _, err := RunWithBuyer(events, bad, demand, it); err == nil {
		t.Error("bad config accepted")
	}
	if _, _, err := RunWithBuyer(events, cfg, demand, card()); err != nil {
		t.Errorf("valid call failed: %v", err)
	}
}

// buyerCard has an early Wang break-even (R/(p(1-alpha)) = 26.7 h) so
// the smart buyer decides while listed discounts are still live —
// once a listing's ask has been re-capped by aging, its per-hour price
// equals a fresh reservation's R/T and is never strictly cheaper.
func buyerCard() pricing.InstanceType {
	return pricing.InstanceType{
		Name:           "buyer.large",
		OnDemandHourly: 1.0,
		Upfront:        20,
		ReservedHourly: 0.25,
		PeriodHours:    400,
	}
}

func TestRunWithBuyerPrefersCheapUsedListing(t *testing.T) {
	// Fresh per-hour = 20/400 = 0.05. The listing offers 200 remaining
	// hours at 0.8 * 10 = 8; by the buyer's decision at hour 26 it has
	// 174 h left (cap 8.7, ask still 8 -> 0.046/h < 0.05/h): take it.
	it := buyerCard()
	demand := make([]int, 200)
	for i := range demand {
		demand[i] = 1
	}
	events := []SellEvent{{Hour: 0, Seller: "a", Instance: it, RemainingHours: 200}}
	cfg := defaultConfig()
	cfg.BuyerRate = 0 // no background buyers competing
	cfg.Horizon = 200

	stats, buyer, err := RunWithBuyer(events, cfg, demand, it)
	if err != nil {
		t.Fatal(err)
	}
	if buyer.UsedPurchases != 1 || buyer.FreshReservations != 0 {
		t.Fatalf("buyer = %+v, want one used purchase", buyer)
	}
	if !almostEqual(buyer.UpfrontSpent, 8, 1e-9) {
		t.Errorf("UpfrontSpent = %v, want 8", buyer.UpfrontSpent)
	}
	// Paid 8 for a prorated value of 20*174/400 = 8.7: saved 0.7.
	if !almostEqual(buyer.Savings, 0.7, 1e-9) {
		t.Errorf("Savings = %v, want 0.7", buyer.Savings)
	}
	if stats.Sold != 1 {
		t.Errorf("market sold = %d, want 1", stats.Sold)
	}
}

func TestRunWithBuyerFallsBackToFresh(t *testing.T) {
	// An undiscounted listing (ask per hour equal to fresh R/T) is
	// skipped by the strict < comparison: the buyer reserves fresh.
	it := buyerCard()
	demand := make([]int, 200)
	for i := range demand {
		demand[i] = 1
	}
	events := []SellEvent{{Hour: 0, Seller: "a", Instance: it, RemainingHours: 300}}
	cfg := defaultConfig()
	cfg.ListingDiscount = 1.0
	cfg.BuyerRate = 0
	cfg.Horizon = 200
	_, buyer, err := RunWithBuyer(events, cfg, demand, it)
	if err != nil {
		t.Fatal(err)
	}
	if buyer.UsedPurchases != 0 {
		t.Errorf("buyer bought an overpriced listing: %+v", buyer)
	}
	if buyer.FreshReservations != 1 {
		t.Errorf("FreshReservations = %d, want 1", buyer.FreshReservations)
	}
	if !almostEqual(buyer.UpfrontSpent, it.Upfront, 1e-9) {
		t.Errorf("UpfrontSpent = %v, want %v", buyer.UpfrontSpent, it.Upfront)
	}
}

func TestRunWithBuyerDeterministic(t *testing.T) {
	it := card()
	demand := make([]int, 300)
	for i := range demand {
		demand[i] = 2
	}
	events := []SellEvent{
		{Hour: 0, Seller: "a", Instance: it, RemainingHours: 300},
		{Hour: 50, Seller: "b", Instance: it, RemainingHours: 250},
	}
	cfg := defaultConfig()
	cfg.BuyerRate = 0.3
	s1, b1, err := RunWithBuyer(events, cfg, demand, it)
	if err != nil {
		t.Fatal(err)
	}
	s2, b2, err := RunWithBuyer(events, cfg, demand, it)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || b1 != b2 {
		t.Errorf("runs differ: %+v/%+v vs %+v/%+v", s1, b1, s2, b2)
	}
}
