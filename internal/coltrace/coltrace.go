// Package coltrace is the columnar on-disk cohort store: a compact,
// versioned binary format holding a whole cohort's demand (and
// optionally new-reservation) series as hour-major column blocks, so a
// million-user cohort is parsed once by `ritrace convert` and then
// loaded by every subsequent run with a single sequential read
// (DESIGN.md §4.6).
//
// A `.colt` file is a sequence of framed cohort records. Each record
// carries a fixed header (magic, format version, flags, user and hour
// counts, an 8-byte config digest binding the header to the user
// table), a length-prefixed user-name table, one or two column blocks
// of little-endian int32 values laid out hour-major (all users' hour 0,
// then hour 1, ...), and a CRC-32C footer over the whole record — the
// same framing discipline as internal/gridstore. Decoding keeps the
// longest valid prefix and classifies whatever stopped it with a
// sentinel wrapped in a *CohortError, so torn tails, version skew and
// corruption are reported, never silently dropped. Every decodable
// record re-encodes to exactly its input bytes: the encoding is
// canonical and decode ∘ encode is the identity.
package coltrace

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	// FormatVersion versions the cohort record framing. Decoders reject
	// records from any other version with ErrVersion; cohorts are simply
	// re-converted from their source traces, never migrated.
	FormatVersion = 1

	// Ext is the conventional file extension for cohort stores.
	Ext = ".colt"

	// headerLen is the fixed-size prefix of every record: magic (4),
	// version (2), flags (2), users (4), hours (4), config digest (8).
	headerLen = 24

	// footerLen is the CRC-32C trailer.
	footerLen = 4

	// countLen is the redundant value-count prefix of each column block;
	// it must equal users*hours, catching column-length mismatches as a
	// distinct corruption class instead of a frame-shift.
	countLen = 4

	// maxNameLen bounds a user-name length so a corrupted table cannot
	// demand an absurd allocation.
	maxNameLen = 1 << 12

	// maxUsers and maxHours bound the header counts for the same reason.
	maxUsers = 1 << 26
	maxHours = 1 << 26

	// maxValues bounds users*hours per column block (1 GiB of int32s).
	maxValues = 1 << 28

	// flagNewRes marks a record carrying a new-reservation column block
	// after the demand block.
	flagNewRes = 1 << 0

	// flagsMask is the set of defined flag bits; records with any other
	// bit set are rejected so the encoding stays canonical.
	flagsMask = flagNewRes
)

// cohortMagic opens every cohort record.
var cohortMagic = [4]byte{'R', 'I', 'C', 'T'}

// crcTable is the Castagnoli polynomial, matching gridstore.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Sentinel decode errors, each reported wrapped in a *CohortError
// carrying the byte offset (and file path when known) so errors.Is
// works on the sentinel while the message stays actionable.
var (
	// ErrTruncated marks a record cut short — a torn tail from an
	// interrupted write. Everything before it is intact.
	ErrTruncated = errors.New("coltrace: truncated cohort record")
	// ErrChecksum marks a fully-framed record whose CRC-32C does not
	// match its payload.
	ErrChecksum = errors.New("coltrace: cohort checksum mismatch")
	// ErrVersion marks a record written by a different FormatVersion.
	ErrVersion = errors.New("coltrace: unsupported format version")
	// ErrCorrupt marks framing damage: bad magic, unknown flags, an
	// impossible count, a column-length mismatch, a negative value.
	ErrCorrupt = errors.New("coltrace: corrupt cohort record")
	// ErrDigest marks a record whose header config digest does not match
	// the digest recomputed from its own header and user table.
	ErrDigest = errors.New("coltrace: cohort config digest mismatch")
	// ErrDuplicateUser marks a record naming the same user twice.
	ErrDuplicateUser = errors.New("coltrace: duplicate user id")
)

// Cohort is one decoded cohort: per-user ids plus hour-major column
// blocks. Demand (and NewRes, when present) hold Users×Hours values
// with value (u, t) at index t*len(Users)+u, so advancing every user
// one hour reads one contiguous stripe.
//
//rilint:frozen
type Cohort struct {
	// Users holds the unique per-user ids, fixing the column order.
	Users []string
	// Hours is the series length shared by every user in the cohort.
	Hours int
	// Demand is the hour-major demand block (d_t per user per hour).
	Demand []int32
	// NewRes, when non-nil, is the hour-major new-reservation block
	// (n_t per user per hour).
	NewRes []int32
}

// DemandAt returns user u's demand at hour t.
func (c *Cohort) DemandAt(u, t int) int { return int(c.Demand[t*len(c.Users)+u]) }

// NewResAt returns user u's new reservations at hour t, or 0 when the
// cohort carries no reservation block.
func (c *Cohort) NewResAt(u, t int) int {
	if c.NewRes == nil {
		return 0
	}
	return int(c.NewRes[t*len(c.Users)+u])
}

// validate rejects cohorts the format could not round-trip.
func (c *Cohort) validate() error {
	switch {
	case len(c.Users) == 0:
		return errors.New("coltrace: cohort has no users")
	case len(c.Users) > maxUsers:
		return fmt.Errorf("coltrace: %d users exceeds cap %d", len(c.Users), maxUsers)
	case c.Hours < 0 || c.Hours > maxHours:
		return fmt.Errorf("coltrace: hour count %d out of range", c.Hours)
	case len(c.Users)*c.Hours > maxValues:
		return fmt.Errorf("coltrace: column of %d values exceeds cap %d", len(c.Users)*c.Hours, maxValues)
	}
	nv := len(c.Users) * c.Hours
	if len(c.Demand) != nv {
		return fmt.Errorf("coltrace: demand block has %d values, cohort shape wants %d", len(c.Demand), nv)
	}
	if c.NewRes != nil && len(c.NewRes) != nv {
		return fmt.Errorf("coltrace: reservation block has %d values, cohort shape wants %d", len(c.NewRes), nv)
	}
	seen := make(map[string]struct{}, len(c.Users))
	for _, u := range c.Users {
		if u == "" || len(u) > maxNameLen {
			return fmt.Errorf("coltrace: user name %.32q... length %d out of range [1, %d]", u, len(u), maxNameLen)
		}
		if _, dup := seen[u]; dup {
			return fmt.Errorf("%w: %q", ErrDuplicateUser, u)
		}
		seen[u] = struct{}{}
	}
	for i, v := range c.Demand {
		if v < 0 {
			return fmt.Errorf("coltrace: negative demand value %d at column index %d", v, i)
		}
	}
	for i, v := range c.NewRes {
		if v < 0 {
			return fmt.Errorf("coltrace: negative reservation value %d at column index %d", v, i)
		}
	}
	return nil
}

// digest is the 8-byte config binding stamped into every record
// header: a truncated SHA-256 over a length-prefixed serialization of
// the version, flags, shape and user table. Like gridstore's spec
// digest it is not cryptographic binding — it is a strong guard
// against splicing a header onto another cohort's columns.
func cohortDigest(flags uint16, hours int, users []string) [8]byte {
	h := sha256.New()
	fmt.Fprintf(h, "coltrace/%d\x00%d\x00%d\x00%d\x00", FormatVersion, flags, len(users), hours)
	for _, u := range users {
		fmt.Fprintf(h, "%d:%s\x00", len(u), u)
	}
	var d [8]byte
	copy(d[:], h.Sum(nil)[:8])
	return d
}

// CohortError locates one undecodable record inside a cohort store. It
// wraps a sentinel (ErrTruncated, ErrChecksum, ErrVersion, ErrCorrupt,
// ErrDigest, ErrDuplicateUser) so callers classify with errors.Is.
type CohortError struct {
	Path   string
	Offset int64
	Err    error
}

func (e *CohortError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("coltrace: cohort record at offset %d: %v", e.Offset, e.Err)
	}
	return fmt.Sprintf("coltrace: %s: cohort record at offset %d: %v", e.Path, e.Offset, e.Err)
}

func (e *CohortError) Unwrap() error { return e.Err }

// AppendCohort appends c's framed encoding to buf and returns the
// extended slice. The cohort is validated first: a malformed cohort is
// an encoding bug and returns an error rather than writing a record
// decoding would reject.
func AppendCohort(buf []byte, c *Cohort) ([]byte, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	var flags uint16
	if c.NewRes != nil {
		flags |= flagNewRes
	}
	digest := cohortDigest(flags, c.Hours, c.Users)
	start := len(buf)
	buf = append(buf, cohortMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, FormatVersion)
	buf = binary.LittleEndian.AppendUint16(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Users)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Hours))
	buf = append(buf, digest[:]...)
	for _, u := range c.Users {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(u)))
		buf = append(buf, u...)
	}
	buf = appendColumn(buf, c.Demand)
	if c.NewRes != nil {
		buf = appendColumn(buf, c.NewRes)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], crcTable)), nil
}

func appendColumn(buf []byte, vals []int32) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(vals)))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

// decodeOne decodes the record at the head of b, returning it and the
// number of bytes consumed. An empty b is the caller's clean EOF,
// never passed here.
func decodeOne(b []byte) (*Cohort, int, error) {
	if len(b) < headerLen {
		return nil, 0, ErrTruncated
	}
	if [4]byte(b[:4]) != cohortMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != FormatVersion {
		return nil, 0, fmt.Errorf("%w: record version %d, this build reads %d", ErrVersion, v, FormatVersion)
	}
	flags := binary.LittleEndian.Uint16(b[6:8])
	if bad := flags &^ uint16(flagsMask); bad != 0 {
		return nil, 0, fmt.Errorf("%w: unknown flag bits %#04x", ErrCorrupt, bad)
	}
	users := int(binary.LittleEndian.Uint32(b[8:12]))
	hours := int(binary.LittleEndian.Uint32(b[12:16]))
	digest := [8]byte(b[16:24])
	switch {
	case users == 0 || users > maxUsers:
		return nil, 0, fmt.Errorf("%w: user count %d out of range [1, %d]", ErrCorrupt, users, maxUsers)
	case hours > maxHours:
		return nil, 0, fmt.Errorf("%w: hour count %d exceeds %d", ErrCorrupt, hours, maxHours)
	case users*hours > maxValues:
		return nil, 0, fmt.Errorf("%w: column of %d values exceeds cap %d", ErrCorrupt, users*hours, maxValues)
	}
	cols := 1
	if flags&flagNewRes != 0 {
		cols = 2
	}
	nv := users * hours
	// Before allocating anything sized by the header, require the bytes
	// the smallest possible such record would occupy, so a hostile
	// header cannot demand an allocation the input could never back.
	if minTotal := headerLen + 2*users + cols*(countLen+4*nv) + footerLen; len(b) < minTotal {
		return nil, 0, ErrTruncated
	}
	names := make([]string, users)
	off := headerLen
	for i := range names {
		if off+2 > len(b) {
			return nil, 0, ErrTruncated
		}
		n := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if n == 0 || n > maxNameLen {
			return nil, 0, fmt.Errorf("%w: user name length %d out of range [1, %d]", ErrCorrupt, n, maxNameLen)
		}
		if off+n > len(b) {
			return nil, 0, ErrTruncated
		}
		names[i] = string(b[off : off+n])
		off += n
	}
	total := off + cols*(countLen+4*nv) + footerLen
	if len(b) < total {
		return nil, 0, ErrTruncated
	}
	body := b[:total-footerLen]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(b[total-footerLen:total]); got != want {
		return nil, 0, fmt.Errorf("%w: crc %08x, want %08x", ErrChecksum, got, want)
	}
	if cohortDigest(flags, hours, names) != digest {
		return nil, 0, fmt.Errorf("%w: header says %x", ErrDigest, digest[:])
	}
	seen := make(map[string]struct{}, users)
	for _, u := range names {
		if _, dup := seen[u]; dup {
			return nil, 0, fmt.Errorf("%w: %q", ErrDuplicateUser, u)
		}
		seen[u] = struct{}{}
	}
	demand, off, err := decodeColumn(b, off, nv, "demand")
	if err != nil {
		return nil, 0, err
	}
	c := &Cohort{Users: names, Hours: hours, Demand: demand}
	if cols == 2 {
		if c.NewRes, off, err = decodeColumn(b, off, nv, "reservation"); err != nil {
			return nil, 0, err
		}
	}
	return c, off + footerLen, nil
}

func decodeColumn(b []byte, off, nv int, what string) ([]int32, int, error) {
	if n := int(binary.LittleEndian.Uint32(b[off:])); n != nv {
		return nil, 0, fmt.Errorf("%w: %s column declares %d values, header shape wants %d", ErrCorrupt, what, n, nv)
	}
	off += countLen
	vals := make([]int32, nv)
	for i := range vals {
		v := int32(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if v < 0 {
			return nil, 0, fmt.Errorf("%w: negative %s value at column index %d", ErrCorrupt, what, i)
		}
		vals[i] = v
	}
	return vals, off, nil
}

// DecodeAll scans a cohort store's bytes and returns the records of
// its longest valid prefix, the prefix's byte length, and the
// *CohortError that stopped the scan (nil when the whole store decoded
// cleanly).
func DecodeAll(data []byte) ([]*Cohort, int64, error) {
	var out []*Cohort
	var off int64
	for int(off) < len(data) {
		c, n, err := decodeOne(data[off:])
		if err != nil {
			return out, off, &CohortError{Offset: off, Err: err}
		}
		out = append(out, c)
		off += int64(n)
	}
	return out, off, nil
}
