package coltrace

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/fstest"

	"rimarket/internal/faultfs"
	"rimarket/internal/workload"
)

func crc32Of(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

func writeBytes(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }

func testCohort(tb testing.TB) *Cohort {
	tb.Helper()
	c, err := FromTraces([]workload.Trace{
		{User: "user-a", Demand: []int{0, 1, 2, 3}},
		{User: "user-b", Demand: []int{3, 2, 1, 0}},
		{User: "user-c", Demand: []int{5, 5, 5, 5}},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

func encode(tb testing.TB, cohorts ...*Cohort) []byte {
	tb.Helper()
	var buf []byte
	var err error
	for _, c := range cohorts {
		if buf, err = AppendCohort(buf, c); err != nil {
			tb.Fatal(err)
		}
	}
	return buf
}

func TestRoundTrip(t *testing.T) {
	c := testCohort(t)
	c.NewRes = make([]int32, len(c.Demand))
	c.NewRes[0] = 2 // user-a reserves 2 at hour 0
	c.NewRes[1*3+1] = 1

	buf := encode(t, c)
	got, n, err := DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(buf)) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], c) {
		t.Fatalf("decoded cohort differs:\n got %+v\nwant %+v", got[0], c)
	}
	reenc := encode(t, got[0])
	if string(reenc) != string(buf) {
		t.Fatal("re-encoded bytes differ from original encoding")
	}
}

func TestHourMajorLayout(t *testing.T) {
	c := testCohort(t)
	if got := c.DemandAt(1, 2); got != 1 {
		t.Fatalf("DemandAt(user-b, hour 2) = %d, want 1", got)
	}
	// Hour stripe t=0 is all users' hour-0 demand, contiguous.
	if want := []int32{0, 3, 5}; !reflect.DeepEqual(c.Demand[:3], want) {
		t.Fatalf("hour-0 stripe %v, want %v", c.Demand[:3], want)
	}
}

func TestTracesRoundTrip(t *testing.T) {
	traces := []workload.Trace{
		{User: "x", Demand: []int{1, 2}},
		{User: "y", Demand: []int{0, 7}},
	}
	c, err := FromTraces(traces)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Traces(), traces) {
		t.Fatalf("Traces() = %+v, want %+v", c.Traces(), traces)
	}
}

func TestFromTracesErrors(t *testing.T) {
	cases := []struct {
		name   string
		traces []workload.Trace
		want   string
	}{
		{"empty", nil, "no traces"},
		{"ragged", []workload.Trace{{User: "a", Demand: []int{1}}, {User: "b", Demand: []int{1, 2}}}, "pad or clip"},
		{"negative", []workload.Trace{{User: "a", Demand: []int{-1}}}, "outside int32"},
		{"duplicate", []workload.Trace{{User: "a", Demand: []int{1}}, {User: "a", Demand: []int{2}}}, "duplicate user"},
		{"anonymous", []workload.Trace{{User: "", Demand: []int{1}}}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FromTraces(tc.traces)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestMergeTracesRejectsCrossCohortDuplicates(t *testing.T) {
	a := testCohort(t)
	b := testCohort(t)
	if _, err := MergeTraces(a, b); !errors.Is(err, ErrDuplicateUser) {
		t.Fatalf("err = %v, want ErrDuplicateUser", err)
	}
	merged, err := MergeTraces(a)
	if err != nil || len(merged) != 3 {
		t.Fatalf("merge of one cohort: %d traces, err %v", len(merged), err)
	}
}

// TestDecodeClassification exercises each sentinel class and checks the
// valid-prefix contract: the error offset equals the prefix length.
func TestDecodeClassification(t *testing.T) {
	valid := encode(t, testCohort(t))

	damage := func(mut func(b []byte) []byte) []byte {
		return mut(append([]byte(nil), valid...))
	}
	recrc := func(b []byte) []byte {
		crc := crc32Of(b[:len(b)-footerLen])
		binary.LittleEndian.PutUint32(b[len(b)-footerLen:], crc)
		return b
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"torn header", valid[:headerLen-1], ErrTruncated},
		{"torn footer", valid[:len(valid)-2], ErrTruncated},
		{"bad magic", damage(func(b []byte) []byte { b[0] = 'X'; return b }), ErrCorrupt},
		{"version skew", damage(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], FormatVersion+1)
			return b
		}), ErrVersion},
		{"unknown flags", damage(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[6:8], 0x8000)
			return recrc(b)
		}), ErrCorrupt},
		{"checksum", damage(func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }), ErrChecksum},
		{"digest", damage(func(b []byte) []byte { b[16] ^= 0x01; return recrc(b) }), ErrDigest},
		{"column length mismatch", damage(func(b []byte) []byte {
			off := headerLen + 3*(2+len("user-a")) // first byte of the demand count
			binary.LittleEndian.PutUint32(b[off:], 13)
			return recrc(b)
		}), ErrCorrupt},
		{"hostile user count", damage(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 1<<25)
			return b
		}), ErrTruncated},
		{"hostile hour count", damage(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:16], 1<<30)
			return b
		}), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cs, n, err := DecodeAll(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			var ce *CohortError
			if !errors.As(err, &ce) {
				t.Fatalf("err %v is not a *CohortError", err)
			}
			if ce.Offset != n {
				t.Fatalf("error offset %d != valid prefix %d", ce.Offset, n)
			}
			if len(cs) != 0 || n != 0 {
				t.Fatalf("damaged single-record store decoded %d records, prefix %d", len(cs), n)
			}
		})
	}
}

// encodeDupUserRecord hand-builds a record naming the same user twice,
// with digest and CRC correctly stamped so the duplicate itself is what
// the decoder trips on. FromTraces and AppendCohort both refuse such a
// cohort, so the framing is spliced by hand.
func encodeDupUserRecord(tb testing.TB) []byte {
	tb.Helper()
	c := testCohort(tb)
	c.Users[1] = "user-a"
	var flags uint16
	digest := cohortDigest(flags, c.Hours, c.Users)
	buf := append([]byte(nil), cohortMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, FormatVersion)
	buf = binary.LittleEndian.AppendUint16(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Users)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Hours))
	buf = append(buf, digest[:]...)
	for _, u := range c.Users {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(u)))
		buf = append(buf, u...)
	}
	buf = appendColumn(buf, c.Demand)
	return binary.LittleEndian.AppendUint32(buf, crc32Of(buf))
}

func TestDuplicateUserRecord(t *testing.T) {
	if _, _, err := DecodeAll(encodeDupUserRecord(t)); !errors.Is(err, ErrDuplicateUser) {
		t.Fatalf("err = %v, want ErrDuplicateUser", err)
	}
}

func TestLongestValidPrefix(t *testing.T) {
	one := encode(t, testCohort(t))
	two := append(append([]byte(nil), one...), one...)
	torn := append(append([]byte(nil), one...), one[:7]...)

	cs, n, err := DecodeAll(two)
	// Two identical records in one store decode fine at this layer;
	// cross-record duplicate users are MergeTraces' concern.
	if err != nil || len(cs) != 2 || n != int64(len(two)) {
		t.Fatalf("two records: %d decoded, prefix %d, err %v", len(cs), n, err)
	}
	cs, n, err = DecodeAll(torn)
	if !errors.Is(err, ErrTruncated) || len(cs) != 1 || n != int64(len(one)) {
		t.Fatalf("torn store: %d decoded, prefix %d, err %v", len(cs), n, err)
	}
}

func TestAppendCohortRejectsMalformed(t *testing.T) {
	nv := func(c *Cohort) *Cohort { return c }
	cases := []struct {
		name string
		c    *Cohort
	}{
		{"nil users", &Cohort{Hours: 1, Demand: []int32{1}}},
		{"shape mismatch", nv(&Cohort{Users: []string{"a"}, Hours: 2, Demand: []int32{1}})},
		{"negative hours", &Cohort{Users: []string{"a"}, Hours: -1, Demand: nil}},
		{"negative value", &Cohort{Users: []string{"a"}, Hours: 1, Demand: []int32{-4}}},
		{"short newres", &Cohort{Users: []string{"a"}, Hours: 2, Demand: []int32{1, 1}, NewRes: []int32{1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := AppendCohort(nil, tc.c); err == nil {
				t.Fatal("encoded a malformed cohort")
			}
		})
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cohort"+Ext)
	c := testCohort(t)
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], c) {
		t.Fatalf("file round trip mismatch: %+v", got)
	}
}

func TestReadFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadFile(filepath.Join(dir, "missing.colt")); err == nil {
		t.Fatal("missing file did not error")
	}
	torn := filepath.Join(dir, "torn.colt")
	buf := encode(t, testCohort(t))
	if err := writeBytes(torn, buf[:len(buf)-1]); err != nil {
		t.Fatal(err)
	}
	cs, err := ReadFile(torn)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn file err = %v, want ErrTruncated", err)
	}
	var ce *CohortError
	if !errors.As(err, &ce) || ce.Path != torn {
		t.Fatalf("error does not carry the file path: %v", err)
	}
	if len(cs) != 0 {
		t.Fatalf("torn single-record file yielded %d cohorts", len(cs))
	}
}

// TestReadFSFaults drives the reader through faultfs: injected open
// and read errors must surface as classified I/O errors, and injected
// truncation as ErrTruncated — never a silent partial load.
func TestReadFSFaults(t *testing.T) {
	buf := encode(t, testCohort(t))
	inner := fstest.MapFS{"cohort.colt": {Data: buf}}

	t.Run("clean", func(t *testing.T) {
		cs, err := ReadFS(faultfs.New(inner), "cohort.colt")
		if err != nil || len(cs) != 1 {
			t.Fatalf("clean read: %d cohorts, err %v", len(cs), err)
		}
	})
	t.Run("open error", func(t *testing.T) {
		fsys := faultfs.New(inner)
		fsys.Inject("cohort.colt", faultfs.KindOpenError)
		if _, err := ReadFS(fsys, "cohort.colt"); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("err = %v, want ErrInjected", err)
		}
	})
	t.Run("read error", func(t *testing.T) {
		fsys := faultfs.New(inner)
		fsys.Inject("cohort.colt", faultfs.KindReadError)
		if _, err := ReadFS(fsys, "cohort.colt"); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("err = %v, want ErrInjected", err)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		fsys := faultfs.New(inner)
		fsys.Inject("cohort.colt", faultfs.KindTruncate)
		if _, err := ReadFS(fsys, "cohort.colt"); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
}
