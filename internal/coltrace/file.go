package coltrace

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"

	"rimarket/internal/workload"
)

// FromTraces builds a cohort from equal-length traces. Converters that
// accept ragged inputs (EC2 usage logs) must pad or clip before
// encoding, so the padding decision stays visible at the call site
// rather than silently inside the format.
func FromTraces(traces []workload.Trace) (*Cohort, error) {
	if len(traces) == 0 {
		return nil, errors.New("coltrace: no traces to encode")
	}
	hours := len(traces[0].Demand)
	for _, tr := range traces[1:] {
		if len(tr.Demand) != hours {
			return nil, fmt.Errorf("coltrace: trace %s has %d hours, cohort has %d (pad or clip before encoding)",
				tr.User, len(tr.Demand), hours)
		}
	}
	c := &Cohort{
		Users:  make([]string, len(traces)),
		Hours:  hours,
		Demand: make([]int32, len(traces)*hours),
	}
	for u, tr := range traces {
		c.Users[u] = tr.User
		for t, d := range tr.Demand {
			if d < 0 || d > math.MaxInt32 {
				return nil, fmt.Errorf("coltrace: user %s: demand %d at hour %d outside int32", tr.User, d, t)
			}
			c.Demand[t*len(traces)+u] = int32(d)
		}
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// GroupTraces partitions possibly-ragged traces into rectangular
// cohorts, one per distinct trace length in first-appearance order,
// preserving trace order within each cohort. It is the converter's
// padding-free answer to ragged EC2-log directories: nothing is
// clipped or zero-filled, the store just carries one record per
// length, and MergeTraces flattens them back in the same grouping.
func GroupTraces(traces []workload.Trace) ([]*Cohort, error) {
	if len(traces) == 0 {
		return nil, errors.New("coltrace: no traces to encode")
	}
	order := make([]int, 0, 4)
	byLen := make(map[int][]workload.Trace)
	for _, tr := range traces {
		n := len(tr.Demand)
		if _, ok := byLen[n]; !ok {
			order = append(order, n)
		}
		byLen[n] = append(byLen[n], tr)
	}
	out := make([]*Cohort, 0, len(order))
	for _, n := range order {
		c, err := FromTraces(byLen[n])
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Traces materializes the cohort back into row-major per-user traces,
// in column order.
func (c *Cohort) Traces() []workload.Trace {
	out := make([]workload.Trace, len(c.Users))
	for u, name := range c.Users {
		d := make([]int, c.Hours)
		for t := range d {
			d[t] = int(c.Demand[t*len(c.Users)+u])
		}
		out[u] = workload.Trace{User: name, Demand: d}
	}
	return out
}

// MergeTraces flattens several cohorts (e.g. a directory of .colt
// files) into one trace list, rejecting a user id that appears in more
// than one cohort.
func MergeTraces(cohorts ...*Cohort) ([]workload.Trace, error) {
	seen := make(map[string]struct{})
	var out []workload.Trace
	for _, c := range cohorts {
		for _, tr := range c.Traces() {
			if _, dup := seen[tr.User]; dup {
				return nil, fmt.Errorf("%w: %q appears in more than one cohort", ErrDuplicateUser, tr.User)
			}
			seen[tr.User] = struct{}{}
			out = append(out, tr)
		}
	}
	return out, nil
}

// WriteFile encodes the cohorts as one framed store at path.
func WriteFile(path string, cohorts ...*Cohort) error {
	var buf []byte
	var err error
	for _, c := range cohorts {
		if buf, err = AppendCohort(buf, c); err != nil {
			return err
		}
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("coltrace: write store: %w", err)
	}
	return nil
}

// ReadFile decodes every record of the store at path. Unlike the
// resume-oriented DecodeAll, a partial store is an error here — the
// valid prefix is still returned so callers can report what survived,
// but err is non-nil whenever any byte of the file failed to decode.
func ReadFile(path string) ([]*Cohort, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("coltrace: read store: %w", err)
	}
	return decodeStrict(data, path)
}

// ReadFS is ReadFile over an fs.FS, for fault-injection tests and
// embedded stores.
func ReadFS(fsys fs.FS, name string) ([]*Cohort, error) {
	data, err := fs.ReadFile(fsys, name)
	if err != nil {
		return nil, fmt.Errorf("coltrace: read store: %w", err)
	}
	return decodeStrict(data, name)
}

func decodeStrict(data []byte, path string) ([]*Cohort, error) {
	cs, _, err := DecodeAll(data)
	if err != nil {
		var ce *CohortError
		if errors.As(err, &ce) {
			ce.Path = path
		}
		return cs, err
	}
	return cs, nil
}
