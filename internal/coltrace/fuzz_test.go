package coltrace

// Fuzz target for the cohort decoder: arbitrary bytes — torn footers,
// version skew, column-length mismatches, duplicate user ids, hostile
// counts — must produce classified errors, never panics, unbounded
// allocations, or silently wrong cohorts; and whatever decodes must
// re-encode byte-exactly (decode ∘ encode is the identity on the valid
// prefix). Seed corpus entries cover each committed failure class; CI
// runs a short -fuzztime pass alongside the gtrace and gridstore
// targets.

import (
	"encoding/binary"
	"errors"
	"testing"
)

func FuzzColtraceDecode(f *testing.F) {
	base := testCohort(f)
	valid := encode(f, base)

	withNewRes := testCohort(f)
	withNewRes.NewRes = make([]int32, len(withNewRes.Demand))
	withNewRes.NewRes[0] = 3
	validNR := encode(f, withNewRes)

	two := append(append([]byte(nil), valid...), validNR...)

	recrc := func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[len(b)-footerLen:], crc32Of(b[:len(b)-footerLen]))
		return b
	}

	f.Add([]byte(nil))                       // empty store: zero cohorts, no error
	f.Add(valid)                             // one clean record
	f.Add(validNR)                           // clean record with a reservation block
	f.Add(two)                               // two clean records
	f.Add(valid[:len(valid)-3])              // torn footer
	f.Add(valid[:headerLen-1])               // truncation inside the header
	f.Add(append(two, valid[:9]...))         // clean prefix + torn tail
	f.Add([]byte("RICTnot-a-real-cohort\n")) // magic without framing

	skew := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(skew[4:6], FormatVersion+1)
	f.Add(skew) // version skew

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	f.Add(badMagic) // framing damage

	colMismatch := append([]byte(nil), valid...)
	nameTable := 3 * (2 + len("user-a"))
	binary.LittleEndian.PutUint32(colMismatch[headerLen+nameTable:], 1)
	f.Add(recrc(colMismatch)) // column-length mismatch, CRC restamped

	f.Add(encodeDupUserRecord(f)) // duplicate user id, digest and CRC intact

	flipped := append([]byte(nil), two...)
	flipped[len(flipped)-footerLen-1] ^= 0x40
	f.Add(flipped) // checksum mismatch in the second record

	hugeUsers := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hugeUsers[8:12], 1<<26)
	f.Add(hugeUsers) // hostile user count: must error, not allocate

	hugeHours := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hugeHours[12:16], 1<<31)
	f.Add(hugeHours) // hostile hour count

	f.Fuzz(func(t *testing.T, data []byte) {
		cs, validLen, err := DecodeAll(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", validLen, len(data))
		}
		if err != nil {
			var ce *CohortError
			if !errors.As(err, &ce) {
				t.Fatalf("decode error %v is not a *CohortError", err)
			}
			if ce.Offset != validLen {
				t.Fatalf("error offset %d != valid prefix %d", ce.Offset, validLen)
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) &&
				!errors.Is(err, ErrDigest) && !errors.Is(err, ErrDuplicateUser) {
				t.Fatalf("decode error %v wraps no classification sentinel", err)
			}
		}
		// Whatever decoded must be internally consistent and byte-exactly
		// re-encodable: decode ∘ encode must be the identity on the valid
		// prefix.
		var reenc []byte
		for _, c := range cs {
			if len(c.Demand) != len(c.Users)*c.Hours {
				t.Fatalf("decoded cohort shape %d users x %d hours, %d values",
					len(c.Users), c.Hours, len(c.Demand))
			}
			var encErr error
			reenc, encErr = AppendCohort(reenc, c)
			if encErr != nil {
				t.Fatalf("decoded cohort does not re-encode: %v", encErr)
			}
		}
		if int64(len(reenc)) != validLen {
			t.Fatalf("re-encoded prefix is %d bytes, decoder consumed %d", len(reenc), validLen)
		}
		for i := range reenc {
			if reenc[i] != data[i] {
				t.Fatalf("re-encoded byte %d differs from input", i)
			}
		}
	})
}
