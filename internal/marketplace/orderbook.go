package marketplace

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"

	"rimarket/internal/pricing"
)

// BookListing is one live order-book listing: a reservation's
// remaining period offered under a declining price schedule. Its
// effective ask is the schedule evaluated at the current
// months-remaining, so the ask is a function of the simulated hour.
type BookListing struct {
	// ID is the book-assigned identifier.
	ID ListingID
	// Seller names the listing user.
	Seller string
	// Instance is the price card of the listed reservation.
	Instance pricing.InstanceType
	// ListedAt is the hour the listing entered the book.
	ListedAt int
	// ExpiresAt is the hour the underlying reservation's remaining
	// period ends; the listing dies when the book steps to it.
	ExpiresAt int
	// Schedule is the month-granularity declining ask.
	Schedule PriceSchedule
	// EffectiveAsk is the schedule's price at the current
	// months-remaining — the book's priority key.
	EffectiveAsk float64

	seq     int64 // arrival order for equal-ask tie-breaks
	heapIdx int   // position in the type book's heap
}

// RemainingAt returns the listing's unexpired hours at the given hour.
func (l BookListing) RemainingAt(hour int) int { return l.ExpiresAt - hour }

// Trade records one completed order-book purchase.
type Trade struct {
	// ListingID identifies the listing that filled.
	ListingID ListingID
	// Seller and Buyer name the two sides.
	Seller, Buyer string
	// Instance is the traded reservation's price card.
	Instance pricing.InstanceType
	// Hour is the execution hour.
	Hour int
	// ListedAt is the hour the listing entered the book; Hour-ListedAt
	// is the listing's time-to-sale.
	ListedAt int
	// RemainingHours is the reservation's unexpired period at execution.
	RemainingHours int
	// EffectiveAsk is the scheduled ask that set the listing's priority.
	EffectiveAsk float64
	// PricePaid is what the buyer paid: the effective ask clamped to
	// the prorated cap at the execution hour.
	PricePaid float64
	// Fee and SellerProceeds split PricePaid so that
	// PricePaid == Fee + SellerProceeds holds bit-exactly (see
	// splitFee).
	Fee, SellerProceeds float64
}

// StepResult reports one hour of book aging.
type StepResult struct {
	// Hour is the book's clock after the step.
	Hour int
	// Expired holds the listings delisted this hour because their
	// remaining period ended, in listing order.
	Expired []BookListing
}

// DepthSnapshot is one instance type's market depth.
type DepthSnapshot struct {
	// Open is the number of live listings.
	Open int
	// BestAsk is the cheapest effective ask (0 when the book is empty).
	BestAsk float64
	// BestRemaining is the best listing's unexpired hours.
	BestRemaining int
}

// OrderBook is an hour-stepped two-sided reserved-instance market: the
// seller side lists remaining periods under declining price schedules,
// the buyer side fills cheapest-effective-ask-first, and the book's
// clock drives schedule crossings and listing expiry. It is safe for
// concurrent use and fully deterministic: priority is (effective ask,
// listing order), re-evaluated whenever a listing crosses a month
// boundary, and all per-hour work is bucketed by absolute hour so a
// step touches only the listings whose price or lifetime changes.
type OrderBook struct {
	mu sync.Mutex

	fee     float64
	now     int
	nextID  ListingID
	nextSeq int64
	books   map[string]*bookHeap // instance type name -> priority heap
	byID    map[ListingID]*BookListing
	expiry  map[int][]ListingID // absolute hour -> listings dying then
	reprice map[int][]ListingID // absolute hour -> listings crossing a month boundary then

	trades         []Trade
	buyerPaid      float64
	sellerProceeds float64
	feesCollected  float64
	expiredCount   int
	cancelledCount int
}

// NewOrderBook returns an empty book at hour 0 charging the given
// marketplace fee (Amazon: AmazonFee).
func NewOrderBook(fee float64) (*OrderBook, error) {
	if fee < 0 || fee >= 1 {
		return nil, fmt.Errorf("marketplace: fee %v outside [0, 1)", fee)
	}
	return &OrderBook{
		fee:     fee,
		books:   make(map[string]*bookHeap),
		byID:    make(map[ListingID]*BookListing),
		expiry:  make(map[int][]ListingID),
		reprice: make(map[int][]ListingID),
	}, nil
}

// Now returns the book's clock hour.
func (b *OrderBook) Now() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.now
}

// List offers a reservation's remaining period under the given price
// schedule. The remaining period must be a positive strict part of the
// full period and the schedule must validate against it (declining,
// under the prorated cap; see PriceSchedule.Validate).
func (b *OrderBook) List(seller string, it pricing.InstanceType, remainingHours int, sched PriceSchedule) (ListingID, error) {
	if seller == "" {
		return 0, errors.New("marketplace: empty seller")
	}
	if err := it.Validate(); err != nil {
		return 0, err
	}
	if remainingHours <= 0 || remainingHours >= it.PeriodHours {
		return 0, fmt.Errorf("marketplace: remaining hours %d outside (0, %d)", remainingHours, it.PeriodHours)
	}
	if err := sched.Validate(it, remainingHours); err != nil {
		return 0, err
	}
	months := MonthsRemaining(remainingHours)
	price, ok := sched.PriceAt(months)
	if !ok {
		return 0, fmt.Errorf("marketplace: schedule has no price at %d months remaining", months)
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	b.nextSeq++
	l := &BookListing{
		ID:           b.nextID,
		Seller:       seller,
		Instance:     it,
		ListedAt:     b.now,
		ExpiresAt:    b.now + remainingHours,
		Schedule:     sched,
		EffectiveAsk: price,
		seq:          b.nextSeq,
	}
	b.byID[l.ID] = l
	bh := b.books[it.Name]
	if bh == nil {
		bh = &bookHeap{}
		b.books[it.Name] = bh
	}
	heap.Push(bh, l)
	b.expiry[l.ExpiresAt] = append(b.expiry[l.ExpiresAt], l.ID)
	if next, ok := nextCrossing(l.ExpiresAt, months); ok {
		b.reprice[next] = append(b.reprice[next], l.ID)
	}
	return l.ID, nil
}

// nextCrossing returns the absolute hour a listing expiring at
// expiresAt drops from months to months-1 remaining (no crossing for
// the final month: expiry comes first).
func nextCrossing(expiresAt, months int) (int, bool) {
	if months <= 1 {
		return 0, false
	}
	return expiresAt - (months-1)*HoursPerMonth, true
}

// ListDeclining lists under the default declining schedule at the
// given discount of the prorated cap — the paper's a, stepped monthly.
func (b *OrderBook) ListDeclining(seller string, it pricing.InstanceType, remainingHours int, discount float64) (ListingID, error) {
	sched, err := DecliningSchedule(it, remainingHours, discount)
	if err != nil {
		return 0, err
	}
	return b.List(seller, it, remainingHours, sched)
}

// Cancel withdraws an open listing.
func (b *OrderBook) Cancel(id ListingID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	l, ok := b.byID[id]
	if !ok {
		return fmt.Errorf("marketplace: listing %d not open", id)
	}
	b.dropLocked(l)
	b.cancelledCount++
	return nil
}

// dropLocked removes a live listing from the heap and the ID index.
// Its expiry/reprice bucket entries go stale and are skipped when
// their hour arrives (IDs are never reused).
func (b *OrderBook) dropLocked(l *BookListing) {
	bh := b.books[l.Instance.Name]
	heap.Remove(bh, l.heapIdx)
	if bh.Len() == 0 {
		delete(b.books, l.Instance.Name)
	}
	delete(b.byID, l.ID)
}

// Step advances the book one hour: listings whose remaining period
// ends this hour are delisted (expiry), then listings crossing a month
// boundary take their next scheduled price (heap positions fixed).
// Both walks are in listing order, so the step is deterministic.
func (b *OrderBook) Step() StepResult {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now++
	res := StepResult{Hour: b.now}
	if ids := b.expiry[b.now]; len(ids) > 0 {
		for _, id := range ids {
			l, ok := b.byID[id]
			if !ok {
				continue // sold or cancelled before expiry
			}
			b.dropLocked(l)
			b.expiredCount++
			res.Expired = append(res.Expired, *l)
		}
		delete(b.expiry, b.now)
	}
	if ids := b.reprice[b.now]; len(ids) > 0 {
		for _, id := range ids {
			l, ok := b.byID[id]
			if !ok {
				continue
			}
			months := MonthsRemaining(l.ExpiresAt - b.now)
			if price, ok := l.Schedule.PriceAt(months); ok {
				l.EffectiveAsk = price
				heap.Fix(b.books[l.Instance.Name], l.heapIdx)
			}
			if next, ok := nextCrossing(l.ExpiresAt, months); ok {
				b.reprice[next] = append(b.reprice[next], l.ID)
			}
		}
		delete(b.reprice, b.now)
	}
	return res
}

// Buy purchases up to count instances of the named type,
// cheapest-effective-ask-first with listing-order tie-breaks. The
// price paid is the effective ask clamped to the prorated cap at the
// execution hour (the cap keeps shrinking within a month while the
// scheduled ask is flat). Fewer than count fills is not an error, but
// an empty book is ErrNoListings.
func (b *OrderBook) Buy(buyer, instanceType string, count int) ([]Trade, error) {
	if buyer == "" {
		return nil, errors.New("marketplace: empty buyer")
	}
	if count <= 0 {
		return nil, fmt.Errorf("marketplace: count %d must be positive", count)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	bh := b.books[instanceType]
	if bh == nil || bh.Len() == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoListings, instanceType)
	}
	n := count
	if n > bh.Len() {
		n = bh.Len()
	}
	trades := make([]Trade, 0, n)
	for i := 0; i < n; i++ {
		l := heap.Pop(bh).(*BookListing)
		delete(b.byID, l.ID)
		remaining := l.ExpiresAt - b.now
		price := l.EffectiveAsk
		if cap := ProratedCap(l.Instance, remaining); price > cap {
			price = cap
		}
		fee, proceeds := splitFee(price, b.fee)
		tr := Trade{
			ListingID:      l.ID,
			Seller:         l.Seller,
			Buyer:          buyer,
			Instance:       l.Instance,
			Hour:           b.now,
			ListedAt:       l.ListedAt,
			RemainingHours: remaining,
			EffectiveAsk:   l.EffectiveAsk,
			PricePaid:      price,
			Fee:            fee,
			SellerProceeds: proceeds,
		}
		b.trades = append(b.trades, tr)
		b.buyerPaid += price
		b.sellerProceeds += proceeds
		b.feesCollected += fee
		trades = append(trades, tr)
	}
	if bh.Len() == 0 {
		delete(b.books, instanceType)
	}
	return trades, nil
}

// splitFee splits a price into the marketplace's fee and the seller's
// proceeds such that fee + proceeds == price holds bit-exactly. The
// larger share is computed by multiplication and the smaller as the
// difference; because the larger share is at least price/2, Sterbenz's
// lemma makes the subtraction exact, so the two shares recompose to
// the price with no rounding — the conservation suite asserts this
// per trade and over whole sessions.
func splitFee(price, rate float64) (fee, proceeds float64) {
	if rate <= 0.5 {
		proceeds = price * (1 - rate)
		fee = price - proceeds
		return fee, proceeds
	}
	fee = price * rate
	proceeds = price - fee
	return fee, proceeds
}

// OpenCount returns the number of live listings across all types.
func (b *OrderBook) OpenCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.byID)
}

// TypeCount returns the number of instance types with at least one
// live listing (the books map never retains drained types).
func (b *OrderBook) TypeCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.books)
}

// Depth returns the named type's market depth.
func (b *OrderBook) Depth(instanceType string) DepthSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	bh := b.books[instanceType]
	if bh == nil || bh.Len() == 0 {
		return DepthSnapshot{}
	}
	best := bh.ls[0]
	return DepthSnapshot{
		Open:          bh.Len(),
		BestAsk:       best.EffectiveAsk,
		BestRemaining: best.ExpiresAt - b.now,
	}
}

// OpenBook returns the named type's live listings in priority order
// (cheapest effective ask first, listing order on ties). The result
// is a copy.
func (b *OrderBook) OpenBook(instanceType string) []BookListing {
	b.mu.Lock()
	defer b.mu.Unlock()
	bh := b.books[instanceType]
	if bh == nil {
		return nil
	}
	out := make([]BookListing, len(bh.ls))
	for i, l := range bh.ls {
		out[i] = *l
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EffectiveAsk != out[j].EffectiveAsk {
			return out[i].EffectiveAsk < out[j].EffectiveAsk
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// Trades returns a copy of all completed trades in execution order.
func (b *OrderBook) Trades() []Trade {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Trade(nil), b.trades...)
}

// DrainTrades returns the trade ledger accumulated since the last
// drain and resets it, so a long-lived session can consume trades
// incrementally instead of holding every execution in memory. The
// money totals (Totals) are unaffected.
func (b *OrderBook) DrainTrades() []Trade {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.trades
	b.trades = nil
	return out
}

// Totals returns the book's money flows: everything buyers paid,
// everything sellers received, and the marketplace's fees. The
// conservation invariant paid == proceeds + fees holds bit-exactly
// when the three are re-derived from the trade ledger in execution
// order (each trade recomposes exactly; see splitFee).
func (b *OrderBook) Totals() (buyerPaid, sellerProceeds, fees float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buyerPaid, b.sellerProceeds, b.feesCollected
}

// ExpiredCount returns the number of listings whose remaining period
// ended on the book without selling.
func (b *OrderBook) ExpiredCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.expiredCount
}

// CancelledCount returns the number of listings withdrawn by Cancel.
func (b *OrderBook) CancelledCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cancelledCount
}

// bookHeap is one instance type's priority queue: a min-heap on
// (effective ask, listing order), with heap indices maintained on the
// listings so cancellation and repricing are O(log n).
type bookHeap struct {
	ls []*BookListing
}

func (h *bookHeap) Len() int { return len(h.ls) }

func (h *bookHeap) Less(i, j int) bool {
	a, b := h.ls[i], h.ls[j]
	if a.EffectiveAsk != b.EffectiveAsk {
		return a.EffectiveAsk < b.EffectiveAsk
	}
	return a.seq < b.seq
}

func (h *bookHeap) Swap(i, j int) {
	h.ls[i], h.ls[j] = h.ls[j], h.ls[i]
	h.ls[i].heapIdx = i
	h.ls[j].heapIdx = j
}

func (h *bookHeap) Push(x any) {
	l := x.(*BookListing)
	l.heapIdx = len(h.ls)
	h.ls = append(h.ls, l)
}

func (h *bookHeap) Pop() any {
	old := h.ls
	n := len(old)
	l := old[n-1]
	old[n-1] = nil
	h.ls = old[:n-1]
	return l
}
