package marketplace

import (
	"testing"
)

// FuzzMarketMatch feeds arbitrary op programs (random schedules,
// arrivals, cancellations and clock jumps) through the conservation
// interpreter: whatever the sequence, the book must conserve money
// bit-exactly, never fill above the prorated cap or after expiry,
// keep price-then-listing-order priority, and never panic. The
// committed corpus pins one representative of each op class; CI runs
// a short fuzz pass on every build.
func FuzzMarketMatch(f *testing.F) {
	// A dense mixed session: listings of every card, buys, cancels and
	// both step sizes.
	f.Add([]byte{0, 1, 6, 3, 8, 2, 9, 10, 3, 0, 2, 5, 3, 11, 2, 12, 250, 4, 0, 6, 30, 3, 1, 5, 7, 2, 19})
	// Schedule crossings: list, jump a month at a time, buy after each.
	f.Add([]byte{0, 0, 12, 1, 90, 6, 92, 3, 0, 1, 6, 92, 3, 0, 1, 6, 92, 3, 0, 1})
	// Expiry pressure: short listings, then a large jump past them.
	f.Add([]byte{1, 0, 1, 200, 80, 1, 1, 1, 220, 90, 6, 255, 3, 0, 5})
	// Sparse handcrafted schedules, some invalid (rejected, not fatal).
	f.Add([]byte{2, 0, 7, 60, 3, 40, 2, 1, 4, 250, 1, 10, 3, 0, 3, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		driveMarket(t, data)
	})
}
