package marketplace

import (
	"fmt"

	"rimarket/internal/pricing"
)

// HoursPerMonth is the month granularity of price schedules: the real
// EC2 listing API prices a listing per month remaining, and this
// reproduction uses the pricing package's 1/12-year month so a
// full-period listing spans exactly 12 terms.
const HoursPerMonth = pricing.HoursPerMonth

// PriceTerm is one step of a declining price schedule — exactly the
// {Term, Price} element of the real EC2 CreateReservedInstancesListing
// PriceSchedules parameter. The price applies while the listing has at
// most Term months remaining, until the next (smaller-Term) entry
// takes over.
type PriceTerm struct {
	// Term is the number of months remaining at which Price takes
	// effect.
	Term int
	// Price is the fixed upfront ask while the term is in effect.
	Price float64
}

// PriceSchedule is a month-granularity declining ask: entries in
// strictly descending Term order, each covering the months from its
// Term down to just above the next entry's Term (the last entry covers
// down to one month). The effective ask of a listing is the schedule
// evaluated at its current months-remaining — a function of the
// simulated hour, not a constant.
type PriceSchedule []PriceTerm

// MonthsRemaining converts remaining hours to the schedule month the
// listing is in: the smallest number of whole months covering the
// remaining period (1..12 for a one-year reservation).
func MonthsRemaining(hours int) int {
	if hours <= 0 {
		return 0
	}
	return (hours + HoursPerMonth - 1) / HoursPerMonth
}

// Validate checks the schedule against a listing of the given price
// card and remaining period:
//
//   - entries in strictly descending Term order, every Term >= 1;
//   - the first entry covers the listing's starting month;
//   - prices positive and non-increasing as the term shrinks (the
//     marketplace requires declining schedules, mirroring how sellers
//     must price aging inventory);
//   - each entry's price is at most the prorated cap at the entry's
//     maximum applicable remaining hours (the paper's rule that an ask
//     never exceeds R * remaining/T, checked where the entry is most
//     valuable; within a term the cap keeps shrinking while the price
//     is flat, and the book clamps the executed price to the cap at
//     the fill hour).
func (s PriceSchedule) Validate(it pricing.InstanceType, remainingHours int) error {
	if len(s) == 0 {
		return fmt.Errorf("marketplace: empty price schedule")
	}
	startMonth := MonthsRemaining(remainingHours)
	if s[0].Term < startMonth {
		return fmt.Errorf("marketplace: schedule starts at term %d, below the listing's %d months remaining", s[0].Term, startMonth)
	}
	prev := s[0].Term + 1
	prevPrice := s[0].Price
	for i, pt := range s {
		if pt.Term < 1 {
			return fmt.Errorf("marketplace: schedule term %d at entry %d must be >= 1", pt.Term, i)
		}
		if pt.Term >= prev {
			return fmt.Errorf("marketplace: schedule terms not strictly descending at entry %d (%d then %d)", i, prev-1, pt.Term)
		}
		if pt.Price <= 0 {
			return fmt.Errorf("marketplace: schedule price %v at term %d must be positive", pt.Price, pt.Term)
		}
		if pt.Price > prevPrice {
			return fmt.Errorf("marketplace: schedule price rises from %v to %v at term %d; schedules must decline", prevPrice, pt.Price, pt.Term)
		}
		maxRem := pt.Term * HoursPerMonth
		if maxRem > remainingHours {
			maxRem = remainingHours
		}
		if cap := ProratedCap(it, maxRem); pt.Price > cap+1e-9 {
			return fmt.Errorf("marketplace: schedule price %v at term %d above the prorated cap %v", pt.Price, pt.Term, cap)
		}
		prev = pt.Term
		prevPrice = pt.Price
	}
	return nil
}

// PriceAt evaluates the schedule at the given months remaining: the
// price of the entry with the smallest Term >= monthsRemaining. The
// second return is false when the schedule has no entry covering the
// month (monthsRemaining above the first term or below 1).
func (s PriceSchedule) PriceAt(monthsRemaining int) (float64, bool) {
	if monthsRemaining < 1 || len(s) == 0 || monthsRemaining > s[0].Term {
		return 0, false
	}
	price := s[0].Price
	for _, pt := range s[1:] {
		if pt.Term < monthsRemaining {
			break
		}
		price = pt.Price
	}
	return price, true
}

// DecliningSchedule builds the default declining schedule the paper's
// sellers use, at month granularity: for each month m remaining, the
// ask is discount * ProratedCap at the month's maximum remaining hours
// — the paper's a * R * remaining/T, stepped monthly the way the real
// listing API prices. The discount is the paper's a in (0, 1].
func DecliningSchedule(it pricing.InstanceType, remainingHours int, discount float64) (PriceSchedule, error) {
	if discount <= 0 || discount > 1 {
		return nil, fmt.Errorf("marketplace: discount %v outside (0, 1]", discount)
	}
	if remainingHours <= 0 {
		return nil, fmt.Errorf("marketplace: remaining hours %d must be positive", remainingHours)
	}
	months := MonthsRemaining(remainingHours)
	s := make(PriceSchedule, 0, months)
	for m := months; m >= 1; m-- {
		maxRem := m * HoursPerMonth
		if maxRem > remainingHours {
			maxRem = remainingHours
		}
		s = append(s, PriceTerm{Term: m, Price: discount * ProratedCap(it, maxRem)})
	}
	return s, nil
}
