package marketplace

import (
	"fmt"
)

// Advance ages every open listing by the given number of hours: each
// listing's remaining period shrinks, its ask is re-capped at the new
// prorated maximum (Amazon re-validates the cap as time passes), and
// listings whose reservation expires are delisted. It returns the
// number of listings that expired.
//
// Re-capping only ever lowers an ask, so the relative order of a book
// is preserved and no re-sort is needed.
func (m *Market) Advance(hours int) (expired int, err error) {
	if hours < 0 {
		return 0, fmt.Errorf("marketplace: cannot advance by %d hours", hours)
	}
	if hours == 0 {
		return 0, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, book := range m.books {
		kept := book[:0]
		for _, l := range book {
			l.RemainingHours -= hours
			if l.RemainingHours <= 0 {
				delete(m.byID, l.ID)
				expired++
				continue
			}
			if cap := ProratedCap(l.Instance, l.RemainingHours); l.AskUpfront > cap {
				l.AskUpfront = cap
			}
			kept = append(kept, l)
		}
		if len(kept) == 0 {
			// Every listing of the type expired: drop the key so the map
			// shrinks with the market instead of pinning dead types.
			delete(m.books, name)
			continue
		}
		m.books[name] = kept
	}
	return expired, nil
}

// OpenCount returns the total number of open listings across all
// instance types.
func (m *Market) OpenCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byID)
}
