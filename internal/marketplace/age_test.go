package marketplace

import (
	"testing"
	"testing/quick"
)

func TestAdvanceValidation(t *testing.T) {
	m := mustMarket(t)
	if _, err := m.Advance(-1); err == nil {
		t.Error("negative hours accepted")
	}
	if n, err := m.Advance(0); err != nil || n != 0 {
		t.Errorf("Advance(0) = (%d, %v)", n, err)
	}
}

func TestAdvanceShrinksAndRecaps(t *testing.T) {
	it := t2nano() // R=18, T=8760
	m := mustMarket(t)
	half := it.PeriodHours / 2
	// Ask exactly at the cap: after aging, the ask must follow the new
	// lower cap.
	if _, err := m.List("s", it, half, ProratedCap(it, half)); err != nil {
		t.Fatal(err)
	}
	expired, err := m.Advance(it.PeriodHours / 4)
	if err != nil {
		t.Fatal(err)
	}
	if expired != 0 {
		t.Fatalf("expired = %d, want 0", expired)
	}
	open := m.OpenListings(it.Name)
	if len(open) != 1 {
		t.Fatalf("open = %d", len(open))
	}
	l := open[0]
	wantRem := half - it.PeriodHours/4
	if l.RemainingHours != wantRem {
		t.Errorf("remaining = %d, want %d", l.RemainingHours, wantRem)
	}
	wantCap := ProratedCap(it, wantRem)
	if !almostEqual(l.AskUpfront, wantCap, 1e-9) {
		t.Errorf("ask = %v, want re-capped %v", l.AskUpfront, wantCap)
	}
}

func TestAdvanceKeepsDiscountedAsk(t *testing.T) {
	// An ask already below the new cap is untouched.
	it := t2nano()
	m := mustMarket(t)
	if _, err := m.List("s", it, it.PeriodHours/2, 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Advance(100); err != nil {
		t.Fatal(err)
	}
	if got := m.OpenListings(it.Name)[0].AskUpfront; got != 1.0 {
		t.Errorf("ask = %v, want unchanged 1.0", got)
	}
}

func TestAdvanceExpires(t *testing.T) {
	it := t2nano()
	m := mustMarket(t)
	if _, err := m.List("short", it, 100, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.List("long", it, 5000, 0.1); err != nil {
		t.Fatal(err)
	}
	expired, err := m.Advance(100)
	if err != nil {
		t.Fatal(err)
	}
	if expired != 1 {
		t.Fatalf("expired = %d, want 1", expired)
	}
	open := m.OpenListings(it.Name)
	if len(open) != 1 || open[0].Seller != "long" {
		t.Errorf("open = %+v", open)
	}
	if m.OpenCount() != 1 {
		t.Errorf("OpenCount = %d", m.OpenCount())
	}
	// The expired listing can no longer be cancelled.
	if err := m.Cancel(1); err == nil {
		t.Error("cancel of expired listing succeeded")
	}
}

func TestAdvancePreservesBookOrder(t *testing.T) {
	it := t2nano()
	m := mustMarket(t)
	if _, err := m.List("cheap", it, 4000, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.List("dear", it, 4000, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Advance(500); err != nil {
		t.Fatal(err)
	}
	sales, err := m.Buy("b", it.Name, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sales[0].Listing.Seller != "cheap" || sales[1].Listing.Seller != "dear" {
		t.Errorf("order after aging = %s, %s", sales[0].Listing.Seller, sales[1].Listing.Seller)
	}
}

// TestPropertyAdvanceInvariants: after any sequence of advances, every
// open listing has positive remaining hours and an ask within the
// prorated cap, and OpenCount matches the books.
func TestPropertyAdvanceInvariants(t *testing.T) {
	it := t2nano()
	f := func(remsRaw []uint16, steps []uint8) bool {
		m, err := New()
		if err != nil {
			return false
		}
		for _, raw := range remsRaw {
			rem := int(raw)%(it.PeriodHours-1) + 1
			if _, err := m.List("s", it, rem, ProratedCap(it, rem)*0.9); err != nil {
				return false
			}
		}
		for _, s := range steps {
			if _, err := m.Advance(int(s) * 10); err != nil {
				return false
			}
		}
		open := m.OpenListings(it.Name)
		if len(open) != m.OpenCount() {
			return false
		}
		for _, l := range open {
			if l.RemainingHours <= 0 {
				return false
			}
			if l.AskUpfront > ProratedCap(it, l.RemainingHours)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
