package marketplace

import (
	"errors"
	"testing"

	"rimarket/internal/pricing"
)

func mustBook(t *testing.T, fee float64) *OrderBook {
	t.Helper()
	b, err := NewOrderBook(fee)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewOrderBookValidatesFee(t *testing.T) {
	for _, fee := range []float64{-0.1, 1, 1.5} {
		if _, err := NewOrderBook(fee); err == nil {
			t.Errorf("fee %v accepted", fee)
		}
	}
	if _, err := NewOrderBook(AmazonFee); err != nil {
		t.Fatal(err)
	}
}

func TestOrderBookListValidation(t *testing.T) {
	b := mustBook(t, AmazonFee)
	it := yearCard()
	sched := PriceSchedule{{Term: 6, Price: 300}}
	rem := 6 * HoursPerMonth
	if _, err := b.List("", it, rem, sched); err == nil {
		t.Error("empty seller accepted")
	}
	if _, err := b.List("s", it, 0, sched); err == nil {
		t.Error("zero remaining accepted")
	}
	if _, err := b.List("s", it, it.PeriodHours, sched); err == nil {
		t.Error("full period accepted")
	}
	if _, err := b.List("s", it, rem, PriceSchedule{}); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := b.List("s", it, rem, sched); err != nil {
		t.Fatalf("valid listing rejected: %v", err)
	}
}

func TestOrderBookPriorityAndTies(t *testing.T) {
	b := mustBook(t, 0)
	it := yearCard()
	rem := 6 * HoursPerMonth
	cheap := PriceSchedule{{Term: 6, Price: 200}}
	dear := PriceSchedule{{Term: 6, Price: 300}}
	idDear, _ := b.List("dear", it, rem, dear)
	idCheapA, _ := b.List("cheap-a", it, rem, cheap)
	idCheapB, _ := b.List("cheap-b", it, rem, cheap)

	trades, err := b.Buy("buyer", it.Name, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trades) != 3 {
		t.Fatalf("filled %d, want 3", len(trades))
	}
	// Cheapest first; the equal-ask pair fills in listing order.
	if trades[0].ListingID != idCheapA || trades[1].ListingID != idCheapB || trades[2].ListingID != idDear {
		t.Errorf("fill order %d,%d,%d, want %d,%d,%d",
			trades[0].ListingID, trades[1].ListingID, trades[2].ListingID, idCheapA, idCheapB, idDear)
	}
}

// TestOrderBookScheduleCrossing pins the priority rule under schedule
// crossings: a listing that starts more expensive but whose schedule
// steps below a rival's at the next month boundary overtakes it there,
// deterministically.
func TestOrderBookScheduleCrossing(t *testing.T) {
	it := yearCard()
	rem := 6 * HoursPerMonth
	flat := PriceSchedule{{Term: 6, Price: 300}}
	crossing := PriceSchedule{{Term: 6, Price: 310}, {Term: 5, Price: 100}}

	// Before the boundary: the flat listing is cheaper.
	b := mustBook(t, 0)
	idFlat, _ := b.List("flat", it, rem, flat)
	b.List("crossing", it, rem, crossing)
	trades, err := b.Buy("buyer", it.Name, 1)
	if err != nil {
		t.Fatal(err)
	}
	if trades[0].ListingID != idFlat || trades[0].PricePaid != 300 {
		t.Fatalf("pre-crossing fill = listing %d at %v, want %d at 300", trades[0].ListingID, trades[0].PricePaid, idFlat)
	}

	// One month later the crossing schedule has stepped to 100.
	b = mustBook(t, 0)
	b.List("flat", it, rem, flat)
	idCrossing, _ := b.List("crossing", it, rem, crossing)
	for h := 0; h < HoursPerMonth; h++ {
		b.Step()
	}
	if d := b.Depth(it.Name); d.BestAsk != 100 {
		t.Fatalf("best ask after crossing = %v, want 100", d.BestAsk)
	}
	trades, err = b.Buy("buyer", it.Name, 1)
	if err != nil {
		t.Fatal(err)
	}
	if trades[0].ListingID != idCrossing || trades[0].EffectiveAsk != 100 {
		t.Fatalf("post-crossing fill = listing %d at ask %v, want %d at 100", trades[0].ListingID, trades[0].EffectiveAsk, idCrossing)
	}
}

func TestOrderBookExpiry(t *testing.T) {
	b := mustBook(t, 0)
	it := yearCard()
	id, err := b.List("s", it, 5, PriceSchedule{{Term: 1, Price: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	for h := 1; h <= 4; h++ {
		if res := b.Step(); len(res.Expired) != 0 {
			t.Fatalf("hour %d: premature expiry", h)
		}
	}
	res := b.Step()
	if len(res.Expired) != 1 || res.Expired[0].ID != id {
		t.Fatalf("hour 5: expired %v, want listing %d", res.Expired, id)
	}
	if res.Expired[0].RemainingAt(res.Hour) != 0 {
		t.Errorf("expiry fired with %d hours remaining", res.Expired[0].RemainingAt(res.Hour))
	}
	if b.OpenCount() != 0 || b.ExpiredCount() != 1 || b.TypeCount() != 0 {
		t.Errorf("post-expiry book: open %d, expired %d, types %d", b.OpenCount(), b.ExpiredCount(), b.TypeCount())
	}
	if _, err := b.Buy("buyer", it.Name, 1); !errors.Is(err, ErrNoListings) {
		t.Errorf("buy after expiry: %v, want ErrNoListings", err)
	}
}

func TestOrderBookCancel(t *testing.T) {
	b := mustBook(t, 0)
	it := yearCard()
	id, _ := b.List("s", it, 6*HoursPerMonth, PriceSchedule{{Term: 6, Price: 300}})
	if err := b.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if err := b.Cancel(id); err == nil {
		t.Error("double cancel accepted")
	}
	if b.OpenCount() != 0 || b.CancelledCount() != 1 || b.TypeCount() != 0 {
		t.Errorf("post-cancel book: open %d, cancelled %d, types %d", b.OpenCount(), b.CancelledCount(), b.TypeCount())
	}
	// A cancelled listing's stale expiry bucket entry is skipped.
	for h := 0; h <= 6*HoursPerMonth; h++ {
		if res := b.Step(); len(res.Expired) != 0 {
			t.Fatalf("cancelled listing expired at hour %d", res.Hour)
		}
	}
}

// TestOrderBookCapClamp pins the execution rule: within a term the cap
// keeps shrinking while the scheduled ask is flat, so a fill near
// expiry pays the cap, not the ask.
func TestOrderBookCapClamp(t *testing.T) {
	b := mustBook(t, 0)
	it := yearCard()
	rem := HoursPerMonth // final month: cap 100 at the start
	cap0 := ProratedCap(it, rem)
	sched := PriceSchedule{{Term: 1, Price: cap0}}
	if _, err := b.List("s", it, rem, sched); err != nil {
		t.Fatal(err)
	}
	steps := HoursPerMonth / 2
	for h := 0; h < steps; h++ {
		b.Step()
	}
	trades, err := b.Buy("buyer", it.Name, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := trades[0]
	wantCap := ProratedCap(it, rem-steps)
	if tr.EffectiveAsk != cap0 {
		t.Errorf("effective ask %v, want the scheduled %v", tr.EffectiveAsk, cap0)
	}
	if tr.PricePaid != wantCap {
		t.Errorf("price paid %v, want clamped cap %v", tr.PricePaid, wantCap)
	}
	if tr.RemainingHours != rem-steps {
		t.Errorf("remaining at fill %d, want %d", tr.RemainingHours, rem-steps)
	}
}

func TestOrderBookBuyErrorsAndPartialFill(t *testing.T) {
	b := mustBook(t, AmazonFee)
	it := yearCard()
	b.List("s", it, 6*HoursPerMonth, PriceSchedule{{Term: 6, Price: 300}})
	if _, err := b.Buy("", it.Name, 1); err == nil {
		t.Error("empty buyer accepted")
	}
	if _, err := b.Buy("b", it.Name, 0); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := b.Buy("b", "no-such-type", 1); !errors.Is(err, ErrNoListings) {
		t.Error("unknown type did not return ErrNoListings")
	}
	trades, err := b.Buy("b", it.Name, 5)
	if err != nil || len(trades) != 1 {
		t.Fatalf("partial fill = (%v, %v), want one trade", trades, err)
	}
}

func TestOrderBookDepthAndDrain(t *testing.T) {
	b := mustBook(t, 0)
	it := yearCard()
	b.List("s1", it, 6*HoursPerMonth, PriceSchedule{{Term: 6, Price: 300}})
	b.List("s2", it, 5*HoursPerMonth, PriceSchedule{{Term: 5, Price: 200}})
	d := b.Depth(it.Name)
	if d.Open != 2 || d.BestAsk != 200 || d.BestRemaining != 5*HoursPerMonth {
		t.Errorf("depth %+v", d)
	}
	if d := b.Depth("empty"); d.Open != 0 || d.BestAsk != 0 {
		t.Errorf("empty depth %+v", d)
	}
	open := b.OpenBook(it.Name)
	if len(open) != 2 || open[0].Seller != "s2" || open[1].Seller != "s1" {
		t.Errorf("open book order %v", open)
	}
	if _, err := b.Buy("b", it.Name, 2); err != nil {
		t.Fatal(err)
	}
	if got := b.DrainTrades(); len(got) != 2 {
		t.Fatalf("drained %d trades, want 2", len(got))
	}
	if got := b.DrainTrades(); len(got) != 0 {
		t.Fatalf("second drain returned %d trades", len(got))
	}
	paid, proceeds, fees := b.Totals()
	if paid != 500 || proceeds != 500 || fees != 0 {
		t.Errorf("totals after drain = %v/%v/%v, want 500/500/0", paid, proceeds, fees)
	}
}

// TestMarketBookMapShrinks is the regression test for the legacy
// Market's map growth: Buy, Cancel and Advance must delete drained
// per-type book entries, so a long-lived market over many instance
// types does not retain one empty slice per type forever.
func TestMarketBookMapShrinks(t *testing.T) {
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	card := func(i int) pricing.InstanceType {
		it := yearCard()
		it.Name = it.Name + string(rune('a'+i))
		return it
	}

	// Drain via Buy.
	itBuy := card(0)
	if _, err := m.List("s", itBuy, 100, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Buy("b", itBuy.Name, 1); err != nil {
		t.Fatal(err)
	}
	// Drain via Cancel.
	itCancel := card(1)
	id, err := m.List("s", itCancel, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	// Drain via Advance-driven expiry.
	itExpire := card(2)
	if _, err := m.List("s", itExpire, 100, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Advance(100); err != nil {
		t.Fatal(err)
	}

	if n := m.bookKeyCount(); n != 0 {
		t.Errorf("books map retains %d drained keys, want 0", n)
	}

	// A partially drained book keeps its key.
	itHalf := card(3)
	m.List("s", itHalf, 100, 1)
	m.List("s", itHalf, 100, 1)
	if _, err := m.Buy("b", itHalf.Name, 1); err != nil {
		t.Fatal(err)
	}
	if n := m.bookKeyCount(); n != 1 {
		t.Errorf("books map has %d keys, want 1", n)
	}
}

// bookKeyCount reports the size of the per-type book map, drained keys
// included — the quantity the map-growth regression test pins.
func (m *Market) bookKeyCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.books)
}
