package marketplace

import (
	"math/rand"
	"sync"
	"testing"

	"rimarket/internal/pricing"
)

// auditCards is the fixed card set the conservation interpreter trades
// over: one-year terms with distinct upfronts so caps and schedules
// differ per type.
func auditCards() []pricing.InstanceType {
	base := yearCard()
	out := make([]pricing.InstanceType, 4)
	for i := range out {
		it := base
		it.Name = "audit." + string(rune('a'+i))
		it.Upfront = float64(600 * (i + 1))
		out[i] = it
	}
	return out
}

// checkTrades asserts the per-trade conservation invariants on one
// Buy's fills: bit-exact fee recomposition, the prorated cap, no
// post-expiry execution, and price-then-listing-order priority.
func checkTrades(t testing.TB, b *OrderBook, trades []Trade) {
	t.Helper()
	hour := b.Now()
	for i, tr := range trades {
		if tr.PricePaid != tr.Fee+tr.SellerProceeds {
			t.Fatalf("trade %d: price %v != fee %v + proceeds %v (bit-exact recomposition broken)",
				i, tr.PricePaid, tr.Fee, tr.SellerProceeds)
		}
		if tr.RemainingHours <= 0 {
			t.Fatalf("trade %d executed with %d hours remaining (after expiry)", i, tr.RemainingHours)
		}
		if cap := ProratedCap(tr.Instance, tr.RemainingHours); tr.PricePaid > cap {
			t.Fatalf("trade %d: price %v above prorated cap %v", i, tr.PricePaid, cap)
		}
		if tr.Hour != hour || tr.ListedAt > tr.Hour {
			t.Fatalf("trade %d: hours inconsistent (exec %d, listed %d, now %d)", i, tr.Hour, tr.ListedAt, hour)
		}
		if i > 0 {
			prev := trades[i-1]
			if tr.EffectiveAsk < prev.EffectiveAsk {
				t.Fatalf("trade %d: ask %v filled after %v (priority inversion)", i, tr.EffectiveAsk, prev.EffectiveAsk)
			}
			if tr.EffectiveAsk == prev.EffectiveAsk && tr.ListingID < prev.ListingID {
				t.Fatalf("trade %d: equal-ask listings filled out of listing order (%d after %d)",
					i, tr.ListingID, prev.ListingID)
			}
		}
	}
}

// auditBook asserts the whole-session conservation invariants: the
// ledger re-sums bit-exactly to the book's money totals, Σ payments ==
// Σ proceeds + Σ fees, and every listing is accounted for exactly once.
func auditBook(t testing.TB, b *OrderBook, trades []Trade, listed, rejected int) {
	t.Helper()
	var paid, split float64
	for _, tr := range trades {
		paid += tr.PricePaid
		split += tr.Fee + tr.SellerProceeds
	}
	if paid != split {
		t.Fatalf("conservation broken: buyers paid %v, sellers+fees received %v", paid, split)
	}
	gotPaid, gotProceeds, gotFees := b.Totals()
	if gotPaid != paid {
		t.Fatalf("book paid total %v != ledger re-sum %v", gotPaid, paid)
	}
	var proceeds, fees float64
	for _, tr := range trades {
		proceeds += tr.SellerProceeds
		fees += tr.Fee
	}
	if gotProceeds != proceeds || gotFees != fees {
		t.Fatalf("book totals (%v, %v) != ledger re-sums (%v, %v)", gotProceeds, gotFees, proceeds, fees)
	}
	open := b.OpenCount()
	if accounted := len(trades) + b.ExpiredCount() + b.CancelledCount() + open; accounted != listed {
		t.Fatalf("listing leak: %d listed but %d accounted (sold %d, expired %d, cancelled %d, open %d)",
			listed, accounted, len(trades), b.ExpiredCount(), b.CancelledCount(), open)
	}
	_ = rejected
}

// driveMarket interprets data as an op program over a fresh order
// book — the shared engine of the conservation property suite and
// FuzzMarketMatch. Every byte consumed is deterministic, so the same
// program always produces the same market.
func driveMarket(t testing.TB, data []byte) {
	cards := auditCards()
	b, err := NewOrderBook(AmazonFee)
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	next := func() int {
		if pos >= len(data) {
			return -1
		}
		v := int(data[pos])
		pos++
		return v
	}
	var (
		trades   []Trade
		ids      []ListingID
		listed   int
		rejected int
	)
	for op := next(); op >= 0; op = next() {
		switch op % 8 {
		case 0, 1: // list under the default declining schedule
			it := cards[abs(next())%len(cards)]
			months := 1 + abs(next())%12
			rem := months*HoursPerMonth - abs(next())*2
			if rem <= 0 {
				rem = 1
			}
			if rem >= it.PeriodHours {
				rem = it.PeriodHours - 1
			}
			discount := float64(1+abs(next())%100) / 100
			id, err := b.ListDeclining("seller", it, rem, discount)
			if err != nil {
				rejected++
				continue
			}
			listed++
			ids = append(ids, id)
		case 2: // list under a handcrafted sparse schedule (may be invalid)
			it := cards[abs(next())%len(cards)]
			months := 2 + abs(next())%11
			rem := months * HoursPerMonth
			if rem >= it.PeriodHours {
				rem = it.PeriodHours - 1
				months = MonthsRemaining(rem)
			}
			hi := float64(1+abs(next())%100) / 100 * ProratedCap(it, rem)
			loTerm := 1 + abs(next())%(months-1)
			lo := float64(1+abs(next())%100) / 100 * ProratedCap(it, loTerm*HoursPerMonth)
			id, err := b.List("seller", it, rem, PriceSchedule{{Term: months, Price: hi}, {Term: loTerm, Price: lo}})
			if err != nil {
				rejected++
				continue
			}
			listed++
			ids = append(ids, id)
		case 3, 7: // buy
			it := cards[abs(next())%len(cards)]
			count := 1 + abs(next())%20
			got, err := b.Buy("buyer", it.Name, count)
			if err != nil {
				continue
			}
			checkTrades(t, b, got)
			trades = append(trades, got...)
		case 4: // cancel a (possibly dead) listing
			if len(ids) == 0 {
				continue
			}
			_ = b.Cancel(ids[abs(next())%len(ids)])
		case 5: // small step
			for n := 1 + abs(next())%5; n > 0; n-- {
				b.Step()
			}
		case 6: // large step, crossing month boundaries
			for n := abs(next()) * 8; n > 0; n-- {
				b.Step()
			}
		}
	}
	if got := b.Trades(); len(got) != len(trades) {
		t.Fatalf("ledger holds %d trades, session saw %d", len(got), len(trades))
	}
	auditBook(t, b, trades, listed, rejected)
}

func abs(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// TestPropertyBookConservation runs the conservation interpreter over
// many long random op programs: for any sequence of
// list/buy/cancel/step, money is conserved bit-exactly, no fill
// exceeds the prorated cap or survives expiry, and equal-ask listings
// fill in listing order.
func TestPropertyBookConservation(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		program := make([]byte, 4096)
		rng.Read(program)
		driveMarket(t, program)
	}
}

// TestBookConcurrentReaders runs a scripted mutator against concurrent
// readers of every read-only accessor; under -race this pins the
// book's locking discipline.
func TestBookConcurrentReaders(t *testing.T) {
	b := mustBook(t, AmazonFee)
	it := yearCard()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				b.OpenCount()
				b.TypeCount()
				b.Depth(it.Name)
				b.OpenBook(it.Name)
				b.Trades()
				b.Totals()
				b.Now()
				b.ExpiredCount()
				b.CancelledCount()
			}
		}()
	}
	rng := rand.New(rand.NewSource(7))
	var ids []ListingID
	for i := 0; i < 3000; i++ {
		switch rng.Intn(4) {
		case 0:
			rem := 1 + rng.Intn(it.PeriodHours-1)
			if id, err := b.ListDeclining("seller", it, rem, 0.8); err == nil {
				ids = append(ids, id)
			}
		case 1:
			_, _ = b.Buy("buyer", it.Name, 1+rng.Intn(3))
		case 2:
			if len(ids) > 0 {
				_ = b.Cancel(ids[rng.Intn(len(ids))])
			}
		case 3:
			for n := rng.Intn(50); n > 0; n-- {
				b.Step()
			}
		}
	}
	close(done)
	wg.Wait()
	auditBook(t, b, b.Trades(), len(ids), 0)
}
