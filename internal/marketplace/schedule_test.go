package marketplace

import (
	"testing"

	"rimarket/internal/pricing"
)

// yearCard is a card with round month math: cap at m months remaining
// is exactly 100*m.
func yearCard() pricing.InstanceType {
	return pricing.InstanceType{
		Name:           "sched.large",
		OnDemandHourly: 1.0,
		Upfront:        1200,
		ReservedHourly: 0.3,
		PeriodHours:    pricing.HoursPerYear,
	}
}

func TestMonthsRemaining(t *testing.T) {
	cases := []struct{ hours, want int }{
		{0, 0}, {-5, 0}, {1, 1}, {HoursPerMonth, 1}, {HoursPerMonth + 1, 2},
		{2 * HoursPerMonth, 2}, {pricing.HoursPerYear, 12},
	}
	for _, c := range cases {
		if got := MonthsRemaining(c.hours); got != c.want {
			t.Errorf("MonthsRemaining(%d) = %d, want %d", c.hours, got, c.want)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	it := yearCard()
	rem := 6 * HoursPerMonth // cap 600 at the start, 100*m per month
	cases := []struct {
		name  string
		sched PriceSchedule
		ok    bool
	}{
		{"empty", PriceSchedule{}, false},
		{"single flat", PriceSchedule{{Term: 6, Price: 300}}, true},
		{"full declining", PriceSchedule{{6, 480}, {5, 400}, {4, 320}, {3, 240}, {2, 160}, {1, 80}}, true},
		{"sparse declining", PriceSchedule{{6, 400}, {3, 150}}, true},
		{"starts below current month", PriceSchedule{{5, 300}}, false},
		{"term zero", PriceSchedule{{6, 300}, {0, 100}}, false},
		{"not descending", PriceSchedule{{6, 300}, {6, 200}}, false},
		{"rising price", PriceSchedule{{6, 200}, {5, 300}}, false},
		{"negative price", PriceSchedule{{6, -1}}, false},
		{"above cap at start", PriceSchedule{{6, 601}}, false},
		{"above cap mid-schedule", PriceSchedule{{6, 400}, {2, 201}}, false},
		{"at cap exactly", PriceSchedule{{6, 600}, {2, 200}}, true},
	}
	for _, c := range cases {
		err := c.sched.Validate(it, rem)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestSchedulePriceAt(t *testing.T) {
	s := PriceSchedule{{Term: 6, Price: 400}, {Term: 3, Price: 150}, {Term: 1, Price: 40}}
	cases := []struct {
		months int
		want   float64
		ok     bool
	}{
		{7, 0, false}, {6, 400, true}, {5, 400, true}, {4, 400, true},
		{3, 150, true}, {2, 150, true}, {1, 40, true}, {0, 0, false},
	}
	for _, c := range cases {
		got, ok := s.PriceAt(c.months)
		if ok != c.ok || got != c.want {
			t.Errorf("PriceAt(%d) = (%v, %v), want (%v, %v)", c.months, got, ok, c.want, c.ok)
		}
	}
}

func TestDecliningSchedule(t *testing.T) {
	it := yearCard()
	rem := 6*HoursPerMonth - 100 // partway into the sixth month
	s, err := DecliningSchedule(it, rem, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 6 || s[0].Term != 6 || s[len(s)-1].Term != 1 {
		t.Fatalf("schedule shape %v, want terms 6..1", s)
	}
	if err := s.Validate(it, rem); err != nil {
		t.Fatalf("generated schedule does not validate: %v", err)
	}
	// First term caps at the actual remaining hours, not the month top.
	want := 0.8 * ProratedCap(it, rem)
	if s[0].Price != want {
		t.Errorf("first term price %v, want %v", s[0].Price, want)
	}
	// Later terms are 0.8 * cap at the month boundary: 80*m.
	for _, pt := range s[1:] {
		if want := 0.8 * ProratedCap(it, pt.Term*HoursPerMonth); pt.Price != want {
			t.Errorf("term %d price %v, want %v", pt.Term, pt.Price, want)
		}
	}

	if _, err := DecliningSchedule(it, rem, 0); err == nil {
		t.Error("discount 0 accepted")
	}
	if _, err := DecliningSchedule(it, rem, 1.1); err == nil {
		t.Error("discount > 1 accepted")
	}
	if _, err := DecliningSchedule(it, 0, 0.8); err == nil {
		t.Error("zero remaining accepted")
	}
}
