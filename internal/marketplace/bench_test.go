package marketplace

import (
	"fmt"
	"runtime"
	"testing"

	"rimarket/internal/pricing"
)

// benchBook builds an order book holding open listings spread over
// types instance types and all 12 month classes, with schedules
// aliased per (type, months) so setup memory stays linear in the
// listing count, not the schedule bytes.
func benchBook(tb testing.TB, open, types int) (*OrderBook, []pricing.InstanceType) {
	tb.Helper()
	b, err := NewOrderBook(AmazonFee)
	if err != nil {
		tb.Fatal(err)
	}
	cards := make([]pricing.InstanceType, types)
	scheds := make([][]PriceSchedule, types)
	for ti := range cards {
		it := yearCard()
		it.Name = fmt.Sprintf("bench.%d", ti)
		it.Upfront = float64(900 + 150*ti)
		cards[ti] = it
		scheds[ti] = make([]PriceSchedule, 12)
		for m := 1; m <= 12; m++ {
			rem := m * HoursPerMonth
			if rem >= it.PeriodHours {
				rem = it.PeriodHours - 1
			}
			s, err := DecliningSchedule(it, rem, 0.8)
			if err != nil {
				tb.Fatal(err)
			}
			scheds[ti][m-1] = s
		}
	}
	for i := 0; i < open; i++ {
		ti := i % types
		m := 1 + i%12
		rem := m * HoursPerMonth
		if rem >= cards[ti].PeriodHours {
			rem = cards[ti].PeriodHours - 1
		}
		if _, err := b.List("seller", cards[ti], rem, scheds[ti][m-1]); err != nil {
			tb.Fatal(err)
		}
	}
	return b, cards
}

// BenchmarkMarketMatch measures matching throughput on a book holding
// a fixed number of open listings: each op fills the cheapest listing
// of a rotating instance type and relists an identical remaining
// period, so the book stays at its configured depth for the whole
// run. ns/op is one match+relist round trip; the listings/sec metric
// is the match rate the gate's throughput claim quotes. The trade
// ledger is drained — and a GC forced — off-timer every 16384 ops so
// the benchmark measures matching, not ledger growth or collector
// pauses over the multi-hundred-megabyte book.
func BenchmarkMarketMatch(b *testing.B) {
	for _, open := range []int{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("open=%d", open), func(b *testing.B) {
			book, cards := benchBook(b, open, 8)
			sched := make([]PriceSchedule, len(cards))
			rem := 6 * HoursPerMonth
			for ti, it := range cards {
				s, err := DecliningSchedule(it, rem, 0.8)
				if err != nil {
					b.Fatal(err)
				}
				sched[ti] = s
			}
			b.ReportAllocs()
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i&0x3fff == 0x3fff {
					b.StopTimer()
					book.DrainTrades()
					runtime.GC()
					b.StartTimer()
				}
				ti := i % len(cards)
				if _, err := book.Buy("buyer", cards[ti].Name, 1); err != nil {
					b.Fatal(err)
				}
				if _, err := book.List("seller", cards[ti], rem, sched[ti]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "listings/sec")
			if book.OpenCount() != open {
				b.Fatalf("book depth drifted to %d, want %d", book.OpenCount(), open)
			}
		})
	}
}
