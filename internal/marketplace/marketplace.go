// Package marketplace simulates the Amazon EC2 Reserved Instance
// Marketplace rules the paper builds on (Section III.B):
//
//   - a seller lists the remaining period of a reserved instance for an
//     upfront fee of at most the prorated original upfront
//     (R * remaining/T), typically discounted by a factor a to attract
//     buyers;
//   - listings for the same instance type sell lowest-upfront-first;
//   - the marketplace keeps a service fee (Amazon charges 12%) and the
//     seller receives the rest;
//   - once sold, the seller loses the discounted hourly rate for the
//     instance's remaining period.
//
// The market is safe for concurrent use and fully deterministic:
// equal-priced listings sell in listing order.
package marketplace

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"rimarket/internal/pricing"
)

// AmazonFee is the service fee Amazon charges on each sale.
const AmazonFee = 0.12

// ListingID identifies a live listing.
type ListingID int64

// Listing is one reserved instance offered for sale.
type Listing struct {
	// ID is the market-assigned identifier.
	ID ListingID
	// Seller names the listing user.
	Seller string
	// Instance is the price card of the listed reservation.
	Instance pricing.InstanceType
	// RemainingHours is the unexpired part of the reservation period.
	RemainingHours int
	// AskUpfront is the seller's asking upfront fee; the marketplace
	// caps it at the prorated original upfront.
	AskUpfront float64

	seq int64 // arrival order for equal-price tie-breaks
}

// ProratedCap returns the maximum upfront a seller may ask: the
// original upfront scaled by the remaining fraction of the period
// (the paper's t2.nano example: half the cycle left caps the ask at $9
// of the original $18).
func ProratedCap(it pricing.InstanceType, remainingHours int) float64 {
	return it.Upfront * float64(remainingHours) / float64(it.PeriodHours)
}

// Sale records one completed purchase.
type Sale struct {
	// Listing is the listing that sold.
	Listing Listing
	// Buyer names the purchasing user.
	Buyer string
	// PricePaid is the upfront the buyer paid (the ask).
	PricePaid float64
	// Fee is the marketplace's cut.
	Fee float64
	// SellerProceeds is PricePaid - Fee.
	SellerProceeds float64
}

// Market is a deterministic reserved-instance marketplace.
type Market struct {
	mu sync.Mutex

	fee      float64
	nextID   ListingID
	nextSeq  int64
	books    map[string][]*Listing // instance type name -> open listings
	byID     map[ListingID]*Listing
	proceeds map[string]float64
	sales    []Sale
	feeTotal float64
}

// Option configures a Market.
type Option func(*Market)

// WithFee overrides the marketplace service fee (default AmazonFee).
func WithFee(fee float64) Option {
	return func(m *Market) { m.fee = fee }
}

// New returns an empty marketplace.
func New(opts ...Option) (*Market, error) {
	m := &Market{
		fee:      AmazonFee,
		books:    make(map[string][]*Listing),
		byID:     make(map[ListingID]*Listing),
		proceeds: make(map[string]float64),
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.fee < 0 || m.fee >= 1 {
		return nil, fmt.Errorf("marketplace: fee %v outside [0, 1)", m.fee)
	}
	return m, nil
}

// ErrNoListings is returned by Buy when no listing of the requested
// type is open.
var ErrNoListings = errors.New("marketplace: no open listings for instance type")

// List offers a reservation's remaining period for sale at the given
// asking upfront fee. The ask must be positive and at most the
// prorated cap; the remaining period must be a positive strict part of
// the full period.
func (m *Market) List(seller string, it pricing.InstanceType, remainingHours int, askUpfront float64) (ListingID, error) {
	if seller == "" {
		return 0, errors.New("marketplace: empty seller")
	}
	if err := it.Validate(); err != nil {
		return 0, err
	}
	if remainingHours <= 0 || remainingHours >= it.PeriodHours {
		return 0, fmt.Errorf("marketplace: remaining hours %d outside (0, %d)", remainingHours, it.PeriodHours)
	}
	cap := ProratedCap(it, remainingHours)
	if askUpfront <= 0 || askUpfront > cap+1e-9 {
		return 0, fmt.Errorf("marketplace: ask %v outside (0, %v] (prorated cap)", askUpfront, cap)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	m.nextSeq++
	l := &Listing{
		ID:             m.nextID,
		Seller:         seller,
		Instance:       it,
		RemainingHours: remainingHours,
		AskUpfront:     askUpfront,
		seq:            m.nextSeq,
	}
	m.byID[l.ID] = l
	book := append(m.books[it.Name], l)
	sort.SliceStable(book, func(a, b int) bool {
		if book[a].AskUpfront != book[b].AskUpfront {
			return book[a].AskUpfront < book[b].AskUpfront
		}
		return book[a].seq < book[b].seq
	})
	m.books[it.Name] = book
	return l.ID, nil
}

// ListAtDiscount lists at discount a of the prorated cap — how the
// paper's sellers price (ask = a * R * remaining/T).
func (m *Market) ListAtDiscount(seller string, it pricing.InstanceType, remainingHours int, discount float64) (ListingID, error) {
	if discount <= 0 || discount > 1 {
		return 0, fmt.Errorf("marketplace: discount %v outside (0, 1]", discount)
	}
	return m.List(seller, it, remainingHours, discount*ProratedCap(it, remainingHours))
}

// Cancel withdraws an open listing.
func (m *Market) Cancel(id ListingID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.byID[id]
	if !ok {
		return fmt.Errorf("marketplace: listing %d not open", id)
	}
	delete(m.byID, id)
	m.removeFromBookLocked(l)
	return nil
}

func (m *Market) removeFromBookLocked(l *Listing) {
	book := m.books[l.Instance.Name]
	for i, e := range book {
		if e.ID == l.ID {
			if len(book) == 1 {
				// Last listing of the type: drop the key, not just the
				// elements, so a long-lived market over many instance
				// types does not retain one empty slice per type seen.
				delete(m.books, l.Instance.Name)
				return
			}
			m.books[l.Instance.Name] = append(book[:i], book[i+1:]...)
			return
		}
	}
}

// Buy purchases up to count instances of the named type, cheapest
// listings first (the paper's selling sequence). It returns the
// completed sales; fewer than count sales is not an error, but zero
// open listings is ErrNoListings.
func (m *Market) Buy(buyer, instanceType string, count int) ([]Sale, error) {
	if buyer == "" {
		return nil, errors.New("marketplace: empty buyer")
	}
	if count <= 0 {
		return nil, fmt.Errorf("marketplace: count %d must be positive", count)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	book := m.books[instanceType]
	if len(book) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoListings, instanceType)
	}
	n := count
	if n > len(book) {
		n = len(book)
	}
	sales := make([]Sale, 0, n)
	for _, l := range book[:n] {
		fee := l.AskUpfront * m.fee
		sale := Sale{
			Listing:        *l,
			Buyer:          buyer,
			PricePaid:      l.AskUpfront,
			Fee:            fee,
			SellerProceeds: l.AskUpfront - fee,
		}
		m.proceeds[l.Seller] += sale.SellerProceeds
		m.feeTotal += fee
		m.sales = append(m.sales, sale)
		delete(m.byID, l.ID)
		sales = append(sales, sale)
	}
	if n == len(book) {
		// The book drained: delete the key so the map shrinks instead of
		// accumulating one empty slice per instance type ever traded.
		delete(m.books, instanceType)
	} else {
		m.books[instanceType] = append([]*Listing(nil), book[n:]...)
	}
	return sales, nil
}

// OpenListings returns the open listings for an instance type in
// selling order (cheapest first). The result is a copy.
func (m *Market) OpenListings(instanceType string) []Listing {
	m.mu.Lock()
	defer m.mu.Unlock()
	book := m.books[instanceType]
	out := make([]Listing, len(book))
	for i, l := range book {
		out[i] = *l
	}
	return out
}

// Proceeds returns a seller's accumulated after-fee income.
func (m *Market) Proceeds(seller string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.proceeds[seller]
}

// Sales returns a copy of all completed sales in execution order.
func (m *Market) Sales() []Sale {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Sale(nil), m.sales...)
}

// FeesCollected returns the marketplace's total fee income.
func (m *Market) FeesCollected() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.feeTotal
}
