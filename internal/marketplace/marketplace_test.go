package marketplace

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"rimarket/internal/pricing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func t2nano() pricing.InstanceType {
	// The paper's Section III.B example card.
	return pricing.InstanceType{
		Name:           "t2.nano",
		OnDemandHourly: 0.0059,
		Upfront:        18,
		ReservedHourly: 0.002,
		PeriodHours:    pricing.HoursPerYear,
	}
}

func mustMarket(t *testing.T, opts ...Option) *Market {
	t.Helper()
	m, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidatesFee(t *testing.T) {
	if _, err := New(WithFee(-0.1)); err == nil {
		t.Error("negative fee accepted")
	}
	if _, err := New(WithFee(1)); err == nil {
		t.Error("fee of 1 accepted")
	}
	m := mustMarket(t, WithFee(0))
	if m.fee != 0 {
		t.Errorf("fee = %v, want 0", m.fee)
	}
}

func TestPaperT2NanoSellingExample(t *testing.T) {
	// Section III.B: selling the remaining second half of a t2.nano
	// reservation. Cap = $9; at 20% off the ask is $7.20; the buyer pays
	// $7.20 and the seller receives $7.20 * (1 - 0.12) = $6.336.
	it := t2nano()
	m := mustMarket(t)
	half := it.PeriodHours / 2
	if got := ProratedCap(it, half); !almostEqual(got, 9, 1e-9) {
		t.Fatalf("ProratedCap = %v, want 9", got)
	}
	if _, err := m.ListAtDiscount("seller", it, half, 0.8); err != nil {
		t.Fatal(err)
	}
	sales, err := m.Buy("buyer", "t2.nano", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sales) != 1 {
		t.Fatalf("sales = %d, want 1", len(sales))
	}
	s := sales[0]
	if !almostEqual(s.PricePaid, 7.2, 1e-9) {
		t.Errorf("PricePaid = %v, want 7.2", s.PricePaid)
	}
	if !almostEqual(s.SellerProceeds, 6.336, 1e-9) {
		t.Errorf("SellerProceeds = %v, want 6.336", s.SellerProceeds)
	}
	if !almostEqual(m.Proceeds("seller"), 6.336, 1e-9) {
		t.Errorf("Proceeds = %v, want 6.336", m.Proceeds("seller"))
	}
	if !almostEqual(m.FeesCollected(), 7.2*0.12, 1e-9) {
		t.Errorf("FeesCollected = %v, want %v", m.FeesCollected(), 7.2*0.12)
	}
}

func TestListValidation(t *testing.T) {
	it := t2nano()
	m := mustMarket(t)
	half := it.PeriodHours / 2
	tests := []struct {
		name      string
		seller    string
		remaining int
		ask       float64
	}{
		{name: "empty seller", seller: "", remaining: half, ask: 5},
		{name: "zero remaining", seller: "s", remaining: 0, ask: 5},
		{name: "full period remaining", seller: "s", remaining: it.PeriodHours, ask: 5},
		{name: "zero ask", seller: "s", remaining: half, ask: 0},
		{name: "ask above prorated cap", seller: "s", remaining: half, ask: 9.01},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := m.List(tt.seller, it, tt.remaining, tt.ask); err == nil {
				t.Error("List succeeded, want error")
			}
		})
	}
	if _, err := m.List("s", pricing.InstanceType{}, half, 1); err == nil {
		t.Error("invalid instance accepted")
	}
	if _, err := m.ListAtDiscount("s", it, half, 0); err == nil {
		t.Error("zero discount accepted")
	}
	if _, err := m.ListAtDiscount("s", it, half, 1.2); err == nil {
		t.Error("discount above 1 accepted")
	}
}

func TestBuyLowestUpfrontFirst(t *testing.T) {
	// The paper: "the marketplace sells the reserved instance with the
	// lowest upfront fee at first".
	it := t2nano()
	m := mustMarket(t)
	half := it.PeriodHours / 2
	if _, err := m.List("expensive", it, half, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := m.List("cheap", it, half, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.List("middle", it, half, 7); err != nil {
		t.Fatal(err)
	}
	sales, err := m.Buy("buyer", "t2.nano", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sales) != 2 {
		t.Fatalf("sales = %d, want 2", len(sales))
	}
	if sales[0].Listing.Seller != "cheap" || sales[1].Listing.Seller != "middle" {
		t.Errorf("sale order = %s, %s; want cheap, middle", sales[0].Listing.Seller, sales[1].Listing.Seller)
	}
	left := m.OpenListings("t2.nano")
	if len(left) != 1 || left[0].Seller != "expensive" {
		t.Errorf("open listings = %+v, want only expensive", left)
	}
}

func TestBuyEqualPriceFIFO(t *testing.T) {
	it := t2nano()
	m := mustMarket(t)
	half := it.PeriodHours / 2
	for _, seller := range []string{"first", "second", "third"} {
		if _, err := m.List(seller, it, half, 6); err != nil {
			t.Fatal(err)
		}
	}
	sales, err := m.Buy("buyer", "t2.nano", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"first", "second", "third"} {
		if sales[i].Listing.Seller != want {
			t.Errorf("sale %d seller = %s, want %s", i, sales[i].Listing.Seller, want)
		}
	}
}

func TestBuyPartialFillAndErrors(t *testing.T) {
	it := t2nano()
	m := mustMarket(t)
	if _, err := m.Buy("buyer", "t2.nano", 1); !errors.Is(err, ErrNoListings) {
		t.Errorf("err = %v, want ErrNoListings", err)
	}
	if _, err := m.Buy("", "t2.nano", 1); err == nil {
		t.Error("empty buyer accepted")
	}
	if _, err := m.Buy("b", "t2.nano", 0); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := m.List("s", it, 100, 0.1); err != nil {
		t.Fatal(err)
	}
	sales, err := m.Buy("buyer", "t2.nano", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sales) != 1 {
		t.Errorf("partial fill = %d sales, want 1", len(sales))
	}
	// Book now empty again.
	if _, err := m.Buy("buyer", "t2.nano", 1); !errors.Is(err, ErrNoListings) {
		t.Errorf("err after drain = %v, want ErrNoListings", err)
	}
}

func TestCancel(t *testing.T) {
	it := t2nano()
	m := mustMarket(t)
	id, err := m.List("s", it, 100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(id); err == nil {
		t.Error("double cancel succeeded")
	}
	if got := m.OpenListings("t2.nano"); len(got) != 0 {
		t.Errorf("open listings after cancel = %d", len(got))
	}
}

func TestSalesLedgerCopies(t *testing.T) {
	it := t2nano()
	m := mustMarket(t)
	if _, err := m.List("s", it, 100, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Buy("b", "t2.nano", 1); err != nil {
		t.Fatal(err)
	}
	ledger := m.Sales()
	if len(ledger) != 1 {
		t.Fatalf("ledger = %d, want 1", len(ledger))
	}
	ledger[0].Buyer = "tampered"
	if m.Sales()[0].Buyer != "b" {
		t.Error("Sales ledger aliased internal state")
	}
}

func TestConcurrentListAndBuy(t *testing.T) {
	it := t2nano()
	m := mustMarket(t)
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.List("s", it, 100, 0.1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	var bought int
	var mu sync.Mutex
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sales, err := m.Buy("b", "t2.nano", 5)
			if err != nil && !errors.Is(err, ErrNoListings) {
				t.Error(err)
				return
			}
			mu.Lock()
			bought += len(sales)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if bought != n {
		t.Errorf("bought = %d, want %d", bought, n)
	}
	if got := len(m.OpenListings("t2.nano")); got != 0 {
		t.Errorf("open listings = %d, want 0", got)
	}
}

// TestPropertyConservation: every dollar the buyers pay is split
// exactly between seller proceeds and marketplace fees.
func TestPropertyConservation(t *testing.T) {
	it := t2nano()
	f := func(asksRaw []uint8, feeSel uint8) bool {
		fee := float64(int(feeSel)%50) / 100 // [0, 0.49]
		m, err := New(WithFee(fee))
		if err != nil {
			return false
		}
		cap := ProratedCap(it, 1000)
		for _, raw := range asksRaw {
			ask := cap * float64(int(raw)%100+1) / 100
			if _, err := m.List("s", it, 1000, ask); err != nil {
				return false
			}
		}
		if len(asksRaw) == 0 {
			return true
		}
		sales, err := m.Buy("b", it.Name, len(asksRaw))
		if err != nil {
			return false
		}
		var paid, proceeds, fees float64
		for _, s := range sales {
			paid += s.PricePaid
			proceeds += s.SellerProceeds
			fees += s.Fee
		}
		if !almostEqual(paid, proceeds+fees, 1e-9) {
			return false
		}
		return almostEqual(m.Proceeds("s"), proceeds, 1e-9) &&
			almostEqual(m.FeesCollected(), fees, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBuyOrderMonotone: successive sale prices never decrease.
func TestPropertyBuyOrderMonotone(t *testing.T) {
	it := t2nano()
	f := func(asksRaw []uint8) bool {
		if len(asksRaw) == 0 {
			return true
		}
		m, err := New()
		if err != nil {
			return false
		}
		cap := ProratedCap(it, 2000)
		for _, raw := range asksRaw {
			ask := cap * float64(int(raw)%100+1) / 100
			if _, err := m.List("s", it, 2000, ask); err != nil {
				return false
			}
		}
		sales, err := m.Buy("b", it.Name, len(asksRaw))
		if err != nil {
			return false
		}
		for i := 1; i < len(sales); i++ {
			if sales[i].PricePaid < sales[i-1].PricePaid-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
