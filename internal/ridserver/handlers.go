package ridserver

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"runtime/debug"
	"strconv"

	"rimarket/internal/experiments"
)

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// InfoResponse describes the served snapshot: what can be asked.
type InfoResponse struct {
	// Policies lists the selling policies the snapshot answers for.
	Policies []string `json:"policies"`
	// Users is the cohort size; Hours the queryable horizon — Evaluate
	// accepts hours in [0, Hours).
	Users int `json:"users"`
	Hours int `json:"hours"`
}

// routes builds the mux. Evaluation endpoints are wrapped in the
// robustness envelope; probe endpoints stay outside it so overload and
// drain never hide the server's state from its balancer.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.Handle("/v1/recommend", s.envelope(http.HandlerFunc(s.handleRecommend)))
	mux.Handle("/v1/info", s.envelope(http.HandlerFunc(s.handleInfo)))
	if s.cfg.Metrics != nil {
		mux.Handle("/metricsz", s.envelope(http.HandlerFunc(s.handleMetricsz)))
	}
	return mux
}

// statusWriter tracks whether a handler already wrote headers, so the
// panic handler knows whether a 500 can still be sent.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// envelope is the per-request robustness wrapper, outermost first:
// panic containment (500, process survives), the bounded admission
// gate (503 + Retry-After on overload), request accounting and latency
// through the metrics clock, and the per-request deadline derived from
// the request's own context.
func (s *Server) envelope(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				if m := s.cfg.Metrics; m != nil {
					m.ServePanics.Add(1)
				}
				s.logf("error", "handler panic contained",
					"path", r.URL.Path, "panic", stringify(v), "stack", string(debug.Stack()))
				if !sw.wrote {
					writeJSON(sw, http.StatusInternalServerError, ErrorResponse{Error: "internal error"})
				}
			}
		}()

		// Admission gate: bounded in-flight work. Full means shed now —
		// a queue here is the collapse we are avoiding.
		select {
		case s.gate <- struct{}{}:
			defer func() { <-s.gate }()
		default:
			if m := s.cfg.Metrics; m != nil {
				m.ServeShed.Add(1)
			}
			sw.Header().Set("Retry-After", "1")
			writeJSON(sw, http.StatusServiceUnavailable, ErrorResponse{Error: "overloaded, retry later"})
			return
		}

		if m := s.cfg.Metrics; m != nil {
			m.ServeRequests.Add(1)
			start := m.Now()
			defer func() { m.ServeRequestNs.Observe(m.Now().Sub(start).Nanoseconds()) }()
		}

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(sw, r.WithContext(ctx))
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ready\n")
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "use GET"})
		return
	}
	set := s.snap.Load()
	writeJSON(w, http.StatusOK, InfoResponse{
		Policies: set.Policies(),
		Users:    set.Users(),
		Hours:    set.Horizon(),
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "use GET"})
		return
	}
	b, err := json.MarshalIndent(s.cfg.Metrics.Snapshot(), "", "  ")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "metrics snapshot failed"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// handleRecommend is the daemon's reason to exist: decode one typed
// Query, evaluate it against the immutable snapshot, answer with the
// typed Recommendation. Everything else in this file is armor.
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "use POST"})
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var q experiments.Query
	if err := dec.Decode(&q); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{Error: "request body too large"})
			return
		}
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}

	if s.chaos != nil {
		s.chaos(r)
	}
	if err := r.Context().Err(); err != nil {
		if m := s.cfg.Metrics; m != nil {
			m.ServeTimeouts.Add(1)
		}
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "request deadline exceeded"})
		return
	}

	rec, err := s.snap.Load().Evaluate(q)
	if err != nil {
		writeJSON(w, evalStatus(err), ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// evalStatus maps Evaluate's sentinel errors onto status codes:
// unknown names are 404, a malformed hour is the caller's fault (400),
// anything else is on us.
func evalStatus(err error) int {
	switch {
	case errors.Is(err, experiments.ErrUnknownUser),
		errors.Is(err, experiments.ErrUnknownPolicy),
		errors.Is(err, experiments.ErrUnknownInstance):
		return http.StatusNotFound
	case errors.Is(err, experiments.ErrHourOutOfRange):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON marshals v and writes it as one response with a trailing
// newline. Marshal-then-write keeps responses all-or-nothing: a panic
// before this point leaves the stream clean for the 500 path, and the
// encoded bytes for a Recommendation are exactly
// json.Marshal(rec) + "\n" — the offline bit-identity the chaos suite
// asserts.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Unreachable for the fixed response types; fail closed anyway.
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(status)
	w.Write(b)
}

// stringify renders a recovered panic value for the log record.
func stringify(v any) string {
	switch v := v.(type) {
	case string:
		return v
	case error:
		return v.Error()
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return "unprintable panic value"
		}
		return string(b)
	}
}

// itoa is strconv.Itoa under a name short enough for log call sites.
func itoa(n int) string { return strconv.Itoa(n) }
