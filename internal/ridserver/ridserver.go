// Package ridserver is the long-running recommendation daemon behind
// cmd/rid: it holds the pricing catalog, cohort reservation plans and
// Keep-Reserved baselines resident as one immutable
// experiments.DecisionSet snapshot and answers "should user U sell
// instance I at hour h?" over HTTP/JSON as point-in-time policy
// evaluation — the deployment shape a fleet operator runs, where
// sell/keep decisions arrive continuously as queries rather than
// full-trace replays.
//
// A resident process serving many users is above all a robustness
// problem, so the envelope is the architecture:
//
//   - evaluation state is a read-only snapshot swapped atomically
//     (atomic.Pointer), so request handling is lock-free and the hot
//     path allocates only for JSON encode/decode;
//   - a bounded admission gate sheds load with 503 + Retry-After
//     instead of queueing toward collapse;
//   - every request gets a deadline and a body-size limit;
//   - handler panics are contained per request: the client gets a 500,
//     the process survives, the next request succeeds;
//   - /healthz answers while the process lives, /readyz flips to 503
//     before the listener drains, so balancers stop routing first;
//   - shutdown drains admitted requests within a deadline;
//   - snapshot reloads (SIGHUP in cmd/rid) validate the new snapshot
//     and roll back — keep serving the old one — on any failure.
//
// Answers are bit-identical to the offline experiments pipeline for
// the same (user, instance, hour) queries, before, during and after
// every fault the chaos suite injects: the snapshot is built by the
// same engine replays, and serving never mutates it.
package ridserver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rimarket/internal/experiments"
	"rimarket/internal/obs"
)

// Default envelope parameters, applied by New when the corresponding
// Config field is zero.
const (
	// DefaultMaxInflight bounds concurrently admitted requests.
	DefaultMaxInflight = 256
	// DefaultRequestTimeout is the per-request deadline.
	DefaultRequestTimeout = 5 * time.Second
	// DefaultMaxBodyBytes bounds a request body; a Query is tiny, so
	// anything near this limit is garbage or abuse.
	DefaultMaxBodyBytes = 64 << 10
	// DefaultDrainTimeout bounds graceful shutdown: admitted requests
	// get this long to finish before the listener hard-closes.
	DefaultDrainTimeout = 10 * time.Second
	// DefaultReloadTimeout bounds one snapshot reload; a reload
	// stalled past it fails and the old snapshot keeps serving.
	DefaultReloadTimeout = time.Minute
)

// ErrDrainTimeout marks a graceful shutdown that ran out its drain
// deadline with requests still in flight; those connections were
// hard-closed. cmd/rid maps it to the partial exit code.
var ErrDrainTimeout = errors.New("ridserver: drain deadline exceeded")

// Config parameterizes a Server.
type Config struct {
	// Load builds the evaluation snapshot. It is called once by New and
	// again on every Reload; it must be safe to call repeatedly and
	// should honor ctx cancellation (reloads run under ReloadTimeout).
	// Returning an error leaves the previous snapshot serving.
	Load func(ctx context.Context) (*experiments.DecisionSet, error)

	// MaxInflight bounds concurrently admitted evaluation requests;
	// request MaxInflight+1 is shed with 503 + Retry-After. Probe
	// endpoints (/healthz, /readyz) bypass the gate so balancers keep
	// seeing the truth under overload.
	MaxInflight int
	// RequestTimeout is the per-request deadline, derived from the
	// request context so handlers and chaos hooks observe it.
	RequestTimeout time.Duration
	// MaxBodyBytes caps a request body; larger bodies get 413.
	MaxBodyBytes int64
	// DrainTimeout bounds graceful shutdown (see ErrDrainTimeout).
	DrainTimeout time.Duration
	// ReloadTimeout bounds one Reload's Load call.
	ReloadTimeout time.Duration

	// Metrics, when non-nil, receives the serving counters and the
	// request-latency histogram. Serving with metrics on is proven not
	// to change response bytes (obs-parity test).
	Metrics *obs.Metrics
	// Log receives structured one-line JSON log records (panics, sheds,
	// reload outcomes, lifecycle). Nil discards them.
	Log io.Writer
	// Clock stamps log records; defaults to obs.SystemClock. Serving
	// results never depend on it.
	Clock obs.Clock
}

// Server is one daemon instance. Create with New, serve with Serve,
// swap snapshots with Reload. All methods are safe for concurrent use.
type Server struct {
	cfg     Config
	snap    atomic.Pointer[experiments.DecisionSet]
	gate    chan struct{}
	ready   atomic.Bool
	handler http.Handler

	reloadMu sync.Mutex
	logMu    sync.Mutex

	// chaos, when non-nil, runs between request decode and evaluation.
	// It exists for the chaos suite to inject handler panics and stalls
	// from inside the envelope; production servers never set it.
	chaos func(*http.Request)
}

// New validates cfg, applies defaults, builds the initial snapshot via
// cfg.Load, and returns a server ready to Serve. A failed or invalid
// initial load is fatal: a daemon with nothing to serve should not
// come up ready.
func New(ctx context.Context, cfg Config) (*Server, error) {
	if cfg.Load == nil {
		return nil, fmt.Errorf("ridserver: Config.Load is required")
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.MaxInflight < 0 {
		return nil, fmt.Errorf("ridserver: MaxInflight %d must be positive", cfg.MaxInflight)
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.RequestTimeout < 0 {
		return nil, fmt.Errorf("ridserver: RequestTimeout %v must be positive", cfg.RequestTimeout)
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxBodyBytes < 0 {
		return nil, fmt.Errorf("ridserver: MaxBodyBytes %d must be positive", cfg.MaxBodyBytes)
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.DrainTimeout < 0 {
		return nil, fmt.Errorf("ridserver: DrainTimeout %v must be positive", cfg.DrainTimeout)
	}
	if cfg.ReloadTimeout == 0 {
		cfg.ReloadTimeout = DefaultReloadTimeout
	}
	if cfg.ReloadTimeout < 0 {
		return nil, fmt.Errorf("ridserver: ReloadTimeout %v must be positive", cfg.ReloadTimeout)
	}
	if cfg.Clock == nil {
		cfg.Clock = obs.SystemClock
	}
	s := &Server{cfg: cfg, gate: make(chan struct{}, cfg.MaxInflight)}
	set, err := s.load(ctx)
	if err != nil {
		return nil, fmt.Errorf("ridserver: initial snapshot: %w", err)
	}
	s.snap.Store(set)
	s.handler = s.routes()
	return s, nil
}

// load runs cfg.Load under the reload deadline and validates the
// result; it never touches the served snapshot.
func (s *Server) load(ctx context.Context) (*experiments.DecisionSet, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.ReloadTimeout)
	defer cancel()
	set, err := s.cfg.Load(ctx)
	if err != nil {
		return nil, err
	}
	if err := validateSnapshot(set); err != nil {
		return nil, err
	}
	return set, nil
}

// validateSnapshot is the structural acceptance check a snapshot must
// pass before it may serve: it must exist and answer for at least one
// user, one policy, and one hour.
func validateSnapshot(set *experiments.DecisionSet) error {
	switch {
	case set == nil:
		return fmt.Errorf("ridserver: Load returned a nil snapshot")
	case set.Users() == 0:
		return fmt.Errorf("ridserver: snapshot has no users")
	case len(set.Policies()) == 0:
		return fmt.Errorf("ridserver: snapshot has no policies")
	case set.Horizon() <= 0:
		return fmt.Errorf("ridserver: snapshot horizon %d must be positive", set.Horizon())
	}
	return nil
}

// Snapshot returns the currently served snapshot.
func (s *Server) Snapshot() *experiments.DecisionSet { return s.snap.Load() }

// Ready reports whether the server is serving and not draining — the
// /readyz answer.
func (s *Server) Ready() bool { return s.ready.Load() }

// Handler returns the server's HTTP handler, for tests and embedders
// that bring their own listener lifecycle. The robustness envelope
// (gate, deadlines, panic containment) is inside the handler, so it
// applies however the handler is mounted.
func (s *Server) Handler() http.Handler { return s.handler }

// Reload builds a fresh snapshot via cfg.Load and swaps it in
// atomically. On any failure — Load error, stall past ReloadTimeout,
// or a snapshot failing validation — the current snapshot keeps
// serving untouched and the error is returned: a bad reload degrades
// to "stale", never to "down". Concurrent Reloads serialize.
func (s *Server) Reload(ctx context.Context) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	set, err := s.load(ctx)
	if err != nil {
		if m := s.cfg.Metrics; m != nil {
			m.SnapshotReloadFails.Add(1)
		}
		s.logf("error", "snapshot reload failed; keeping current snapshot", "err", err.Error())
		return fmt.Errorf("ridserver: reload: %w", err)
	}
	s.snap.Store(set)
	if m := s.cfg.Metrics; m != nil {
		m.SnapshotReloads.Add(1)
	}
	s.logf("info", "snapshot reloaded",
		"users", itoa(set.Users()), "policies", itoa(len(set.Policies())), "hours", itoa(set.Horizon()))
	return nil
}

// Serve accepts connections on ln until ctx is cancelled, then drains:
// readiness flips to 503 first, admitted requests get DrainTimeout to
// finish, and whatever remains is hard-closed with ErrDrainTimeout.
// A clean drain returns nil. Serve owns ln and closes it on return.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler: s.handler,
		// Slow-loris containment: a client must deliver its header and
		// body within the request deadline plus slack, or the connection
		// is cut server-side.
		ReadHeaderTimeout: s.cfg.RequestTimeout,
		ReadTimeout:       2 * s.cfg.RequestTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.ready.Store(true)
	s.logf("info", "serving", "addr", ln.Addr().String())

	select {
	case err := <-errc:
		// The listener failed underneath us; nothing is draining.
		s.ready.Store(false)
		return fmt.Errorf("ridserver: %w", err)
	case <-ctx.Done():
	}

	// Drain: stop reporting ready before the listener closes, so
	// balancers route away while the last admitted requests finish.
	s.ready.Store(false)
	s.logf("info", "draining", "timeout", s.cfg.DrainTimeout.String())
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(dctx)
	<-errc // reap the Serve goroutine (http.ErrServerClosed)
	if err != nil {
		// Deadline ran out with requests still in flight: hard-close.
		srv.Close()
		s.logf("error", "drain deadline exceeded; connections closed", "err", err.Error())
		return fmt.Errorf("%w after %v", ErrDrainTimeout, s.cfg.DrainTimeout)
	}
	s.logf("info", "drained")
	return nil
}
