package ridserver

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rimarket/internal/experiments"
	"rimarket/internal/obs"
)

// testSet builds the small shared evaluation snapshot once: the set is
// immutable, so every test (and every simulated reload) can serve the
// same instance.
var (
	testSetOnce sync.Once
	testSetVal  *experiments.DecisionSet
	testSetErr  error
)

func testSet(t testing.TB) *experiments.DecisionSet {
	t.Helper()
	testSetOnce.Do(func() {
		cfg := experiments.TestScaleConfig()
		cfg.PerGroup = 2
		plan, err := experiments.NewCohortPlan(context.Background(), cfg)
		if err != nil {
			testSetErr = err
			return
		}
		testSetVal, testSetErr = plan.Decisions(context.Background())
	})
	if testSetErr != nil {
		t.Fatalf("building test snapshot: %v", testSetErr)
	}
	return testSetVal
}

// staticLoader serves a fixed snapshot — the Load used by tests whose
// subject is the envelope, not snapshot construction.
func staticLoader(set *experiments.DecisionSet) func(context.Context) (*experiments.DecisionSet, error) {
	return func(context.Context) (*experiments.DecisionSet, error) { return set, nil }
}

// startServer runs a Server on a fresh loopback listener and returns
// its base URL plus a shutdown function that drains it and reports
// Serve's error.
func startServer(t *testing.T, cfg Config) (*Server, string, func() error) {
	t.Helper()
	s, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(ctx, ln) }()
	waitReady(t, s)
	url := "http://" + ln.Addr().String()
	return s, url, func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(30 * time.Second):
			t.Fatal("Serve did not return after cancellation")
			return nil
		}
	}
}

func waitReady(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(time.Millisecond)
	}
}

// postRecommend sends one query and returns status, headers and body.
func postRecommend(t *testing.T, url string, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/recommend", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/recommend: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, resp.Header, b
}

// offlineBytes computes the response bytes the bit-identity contract
// promises: json.Marshal of the offline evaluation plus a newline.
func offlineBytes(t testing.TB, set *experiments.DecisionSet, q experiments.Query) []byte {
	t.Helper()
	rec, err := set.Evaluate(q)
	if err != nil {
		t.Fatalf("offline Evaluate(%+v): %v", q, err)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

func mustJSON(t *testing.T, q experiments.Query) string {
	t.Helper()
	b, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestServeRecommendMatchesOffline(t *testing.T) {
	set := testSet(t)
	_, url, shutdown := startServer(t, Config{Load: staticLoader(set)})
	q := experiments.Query{User: set.UserName(0), Policy: set.Policies()[1], Instance: 0, Hour: 0}
	status, hdr, body := postRecommend(t, url, mustJSON(t, q))
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	if want := offlineBytes(t, set, q); !bytes.Equal(body, want) {
		t.Fatalf("served bytes diverge from offline evaluation:\n  got  %s\n  want %s", body, want)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
}

func TestServeInfoAndProbes(t *testing.T) {
	set := testSet(t)
	s, url, shutdown := startServer(t, Config{Load: staticLoader(set)})
	defer shutdown()

	resp, err := http.Get(url + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Users != set.Users() || info.Hours != set.Horizon() || len(info.Policies) != len(set.Policies()) {
		t.Errorf("info = %+v, want users %d hours %d policies %d", info, set.Users(), set.Horizon(), len(set.Policies()))
	}

	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	if !s.Ready() {
		t.Error("Ready() = false while serving")
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	set := testSet(t)
	_, url, shutdown := startServer(t, Config{Load: staticLoader(set), MaxBodyBytes: 256})
	defer shutdown()

	get, err := http.Get(url + "/v1/recommend")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/recommend = %d, want 405", get.StatusCode)
	}

	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"garbage":        {"{not json", http.StatusBadRequest},
		"unknown field":  {`{"user":"u","policy":"p","hour":0,"extra":1}`, http.StatusBadRequest},
		"oversized body": {`{"user":"` + strings.Repeat("x", 512) + `"}`, http.StatusRequestEntityTooLarge},
		"unknown user":   {`{"user":"nobody","policy":"` + set.Policies()[0] + `","hour":0}`, http.StatusNotFound},
		"unknown policy": {mustJSON(t, experiments.Query{User: set.UserName(0), Policy: "Sell-Everything"}), http.StatusNotFound},
		"bad hour":       {mustJSON(t, experiments.Query{User: set.UserName(0), Policy: set.Policies()[0], Hour: -1}), http.StatusBadRequest},
		"bad instance":   {mustJSON(t, experiments.Query{User: set.UserName(0), Policy: set.Policies()[0], Instance: 99}), http.StatusNotFound},
	} {
		status, _, body := postRecommend(t, url, tc.body)
		if status != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", name, status, tc.want, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q is not an ErrorResponse", name, body)
		}
	}
}

func TestOverloadSheds(t *testing.T) {
	set := testSet(t)
	m := obs.New(obs.SystemClock)
	block := make(chan struct{})
	s, url, shutdown := startServer(t, Config{Load: staticLoader(set), MaxInflight: 1, Metrics: m})
	s.chaos = func(r *http.Request) {
		if r.Header.Get("X-Chaos") == "block" {
			<-block
		}
	}

	// Occupy the single admission slot...
	q := mustJSON(t, experiments.Query{User: set.UserName(0), Policy: set.Policies()[0]})
	firstDone := make(chan int, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, url+"/v1/recommend", strings.NewReader(q))
		req.Header.Set("X-Chaos", "block")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	waitCounter(t, &m.ServeRequests, 1)

	// ...then overload: the next request must shed, not queue.
	status, hdr, _ := postRecommend(t, url, q)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("overloaded request = %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if m.ServeShed.Value() == 0 {
		t.Error("shed counter not incremented")
	}

	close(block)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("admitted request finished with %d, want 200", code)
	}
	// The slot freed: serving resumes without shedding.
	if status, _, _ := postRecommend(t, url, q); status != http.StatusOK {
		t.Fatalf("post-overload request = %d, want 200", status)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

func waitCounter(t *testing.T, c *obs.Counter, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want %d", c.Value(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPanicContained(t *testing.T) {
	set := testSet(t)
	m := obs.New(obs.SystemClock)
	var log bytes.Buffer
	s, url, shutdown := startServer(t, Config{Load: staticLoader(set), Metrics: m, Log: &log})
	s.chaos = func(r *http.Request) {
		if r.Header.Get("X-Chaos") == "panic" {
			panic("injected handler panic")
		}
	}

	q := mustJSON(t, experiments.Query{User: set.UserName(0), Policy: set.Policies()[0]})
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/recommend", strings.NewReader(q))
	req.Header.Set("X-Chaos", "panic")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("panicking request errored at transport level: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request = %d, want 500", resp.StatusCode)
	}
	if m.ServePanics.Value() != 1 {
		t.Errorf("panic counter = %d, want 1", m.ServePanics.Value())
	}
	if !strings.Contains(log.String(), "handler panic contained") {
		t.Errorf("panic not logged: %s", log.String())
	}

	// The process survived; the next request answers correctly.
	status, _, body := postRecommend(t, url, q)
	if status != http.StatusOK {
		t.Fatalf("request after panic = %d", status)
	}
	var qq experiments.Query
	if err := json.Unmarshal([]byte(q), &qq); err != nil {
		t.Fatal(err)
	}
	if want := offlineBytes(t, set, qq); !bytes.Equal(body, want) {
		t.Fatalf("post-panic bytes diverge:\n  got  %s\n  want %s", body, want)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestReloadSwapAndRollback(t *testing.T) {
	set := testSet(t)
	m := obs.New(obs.SystemClock)
	var loadErr error
	var mu sync.Mutex
	load := func(ctx context.Context) (*experiments.DecisionSet, error) {
		mu.Lock()
		defer mu.Unlock()
		if loadErr != nil {
			return nil, loadErr
		}
		return set, nil
	}
	s, err := New(context.Background(), Config{Load: load, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Reload(context.Background()); err != nil {
		t.Fatalf("healthy reload failed: %v", err)
	}
	if m.SnapshotReloads.Value() != 1 {
		t.Errorf("reload counter = %d, want 1", m.SnapshotReloads.Value())
	}

	before := s.Snapshot()
	mu.Lock()
	loadErr = errors.New("backing store unavailable")
	mu.Unlock()
	if err := s.Reload(context.Background()); err == nil {
		t.Fatal("failing reload reported success")
	}
	if s.Snapshot() != before {
		t.Fatal("failed reload swapped the snapshot")
	}
	if m.SnapshotReloadFails.Value() != 1 {
		t.Errorf("reload-fail counter = %d, want 1", m.SnapshotReloadFails.Value())
	}
}

func TestReloadRejectsInvalidSnapshot(t *testing.T) {
	set := testSet(t)
	bad := false
	load := func(ctx context.Context) (*experiments.DecisionSet, error) {
		if bad {
			return nil, nil // nil snapshot, no error: must fail validation
		}
		return set, nil
	}
	s, err := New(context.Background(), Config{Load: load})
	if err != nil {
		t.Fatal(err)
	}
	bad = true
	if err := s.Reload(context.Background()); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if s.Snapshot() != set {
		t.Fatal("invalid reload swapped the snapshot")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	set := testSet(t)
	if _, err := New(context.Background(), Config{}); err == nil {
		t.Error("nil Load accepted")
	}
	if _, err := New(context.Background(), Config{Load: staticLoader(set), MaxInflight: -1}); err == nil {
		t.Error("negative MaxInflight accepted")
	}
	failing := func(context.Context) (*experiments.DecisionSet, error) {
		return nil, errors.New("no data")
	}
	if _, err := New(context.Background(), Config{Load: failing}); err == nil {
		t.Error("failed initial load accepted: a daemon with nothing to serve must not come up")
	}
}

// TestDrainCompletesAdmittedRequests pins the graceful half of
// shutdown: readiness flips to 503 first, an admitted in-flight
// request still completes with the correct answer, and Serve returns
// nil.
func TestDrainCompletesAdmittedRequests(t *testing.T) {
	set := testSet(t)
	block := make(chan struct{})
	inHandler := make(chan struct{}, 1)
	s, url, shutdown := startServer(t, Config{Load: staticLoader(set), DrainTimeout: 20 * time.Second})
	s.chaos = func(r *http.Request) {
		if r.Header.Get("X-Chaos") == "block" {
			inHandler <- struct{}{}
			<-block
		}
	}

	q := experiments.Query{User: set.UserName(0), Policy: set.Policies()[0]}
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, url+"/v1/recommend", strings.NewReader(mustJSON(t, q)))
		req.Header.Set("X-Chaos", "block")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- result{-1, nil}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- result{resp.StatusCode, b}
	}()
	<-inHandler

	// Start the drain while the request is admitted and blocked.
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- shutdown() }()

	// Readiness must flip before the drain completes, while /healthz
	// keeps answering 200 (the process is alive, just not accepting).
	waitNotReady(t, s)
	close(block)

	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("admitted request finished with %d during drain, want 200", r.status)
	}
	if want := offlineBytes(t, set, q); !bytes.Equal(r.body, want) {
		t.Fatalf("drained response diverges:\n  got  %s\n  want %s", r.body, want)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful drain returned %v, want nil", err)
	}
}

func waitNotReady(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("readiness never flipped during drain")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrainTimeoutHardCloses pins the other half: a request that
// refuses to finish inside DrainTimeout is cut and Serve reports
// ErrDrainTimeout.
func TestDrainTimeoutHardCloses(t *testing.T) {
	set := testSet(t)
	block := make(chan struct{})
	defer close(block)
	inHandler := make(chan struct{}, 1)
	s, url, shutdown := startServer(t, Config{Load: staticLoader(set), DrainTimeout: 50 * time.Millisecond})
	s.chaos = func(r *http.Request) {
		inHandler <- struct{}{}
		<-block
	}

	go func() {
		resp, err := http.Post(url+"/v1/recommend", "application/json",
			strings.NewReader(mustJSON(t, experiments.Query{User: set.UserName(0), Policy: set.Policies()[0]})))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-inHandler

	if err := shutdown(); !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("drain past deadline returned %v, want ErrDrainTimeout", err)
	}
}

// TestRequestTimeout pins the per-request deadline: a handler stalled
// past RequestTimeout answers 504 and counts a timeout.
func TestRequestTimeout(t *testing.T) {
	set := testSet(t)
	m := obs.New(obs.SystemClock)
	s, url, shutdown := startServer(t, Config{Load: staticLoader(set), RequestTimeout: 30 * time.Millisecond, Metrics: m})
	defer shutdown()
	s.chaos = func(r *http.Request) { <-r.Context().Done() }

	status, _, _ := postRecommend(t, url, mustJSON(t, experiments.Query{User: set.UserName(0), Policy: set.Policies()[0]}))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("stalled request = %d, want 504", status)
	}
	if m.ServeTimeouts.Value() != 1 {
		t.Errorf("timeout counter = %d, want 1", m.ServeTimeouts.Value())
	}
	s.chaos = nil
}

// TestMetricszSnapshot pins that /metricsz exists only with metrics
// configured and serves the serving section.
func TestMetricszSnapshot(t *testing.T) {
	set := testSet(t)
	m := obs.New(obs.SystemClock)
	_, url, shutdown := startServer(t, Config{Load: staticLoader(set), Metrics: m})
	defer shutdown()

	if status, _, _ := postRecommend(t, url, mustJSON(t, experiments.Query{User: set.UserName(0), Policy: set.Policies()[0]})); status != http.StatusOK {
		t.Fatalf("probe request = %d", status)
	}
	resp, err := http.Get(url + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Serving == nil {
		t.Fatal("metrics snapshot has no serving section")
	}
	// The /metricsz request itself is also counted, so >= 2.
	if snap.Serving.Requests < 2 {
		t.Errorf("serving.requests = %d, want >= 2", snap.Serving.Requests)
	}

	_, urlOff, shutdownOff := startServer(t, Config{Load: staticLoader(set)})
	defer shutdownOff()
	respOff, err := http.Get(urlOff + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	respOff.Body.Close()
	if respOff.StatusCode != http.StatusNotFound {
		t.Errorf("/metricsz without metrics = %d, want 404", respOff.StatusCode)
	}
}

// TestHandlerWithoutServe pins the embedder path: the envelope lives
// in the handler, so mounting Handler() directly still sheds, times
// out and contains panics.
func TestHandlerWithoutServe(t *testing.T) {
	set := testSet(t)
	s, err := New(context.Background(), Config{Load: staticLoader(set)})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, "/v1/recommend",
		strings.NewReader(mustJSON(t, experiments.Query{User: set.UserName(0), Policy: set.Policies()[0]})))
	rw := &recordWriter{header: http.Header{}}
	s.Handler().ServeHTTP(rw, req)
	if rw.status != http.StatusOK {
		t.Fatalf("direct handler call = %d, want 200", rw.status)
	}
}

// recordWriter is a minimal ResponseWriter for direct handler calls.
type recordWriter struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (w *recordWriter) Header() http.Header { return w.header }
func (w *recordWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}
func (w *recordWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.buf.Write(b)
}
