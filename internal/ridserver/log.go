package ridserver

import (
	"encoding/json"
	"fmt"
	"time"
)

// logf emits one structured JSON log line: fixed ts/level/msg fields
// followed by the given key/value pairs in call order. Records are
// single writes under a mutex so concurrent handlers never interleave
// mid-line. A nil Log discards records; serving results never depend
// on logging.
func (s *Server) logf(level, msg string, kv ...string) {
	if s.cfg.Log == nil {
		return
	}
	buf := make([]byte, 0, 128)
	buf = append(buf, `{"ts":`...)
	buf = appendJSONString(buf, s.cfg.Clock().UTC().Format(time.RFC3339Nano))
	buf = append(buf, `,"level":`...)
	buf = appendJSONString(buf, level)
	buf = append(buf, `,"msg":`...)
	buf = appendJSONString(buf, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		buf = append(buf, ',')
		buf = appendJSONString(buf, kv[i])
		buf = append(buf, ':')
		buf = appendJSONString(buf, kv[i+1])
	}
	buf = append(buf, '}', '\n')
	s.logMu.Lock()
	fmt.Fprintf(s.cfg.Log, "%s", buf)
	s.logMu.Unlock()
}

// appendJSONString appends v as a JSON string literal.
func appendJSONString(buf []byte, v string) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Marshal of a string cannot fail; keep the record well-formed
		// regardless.
		return append(buf, `"?"`...)
	}
	return append(buf, b...)
}
