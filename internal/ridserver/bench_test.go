package ridserver

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"rimarket/internal/experiments"
)

// benchQueries cycles realistic load across the snapshot: every user,
// a policy rotation, and hours spread over the horizon, each with its
// request body pre-marshaled so the benchmark times the server, not
// the load generator.
func benchQueries(b *testing.B, set *experiments.DecisionSet) [][]byte {
	b.Helper()
	var bodies [][]byte
	policies := set.Policies()
	hours := []int{0, set.Horizon() / 3, set.Horizon() - 1}
	for ui := 0; ui < set.Users(); ui++ {
		if set.Reserved(ui) == 0 {
			continue
		}
		q := experiments.Query{
			User:   set.UserName(ui),
			Policy: policies[ui%len(policies)],
			Hour:   hours[ui%len(hours)],
		}
		body, err := json.Marshal(q)
		if err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, body)
	}
	return bodies
}

func benchServer(b *testing.B) (*Server, [][]byte) {
	b.Helper()
	set := testSet(b)
	s, err := New(context.Background(), Config{Load: staticLoader(set)})
	if err != nil {
		b.Fatal(err)
	}
	return s, benchQueries(b, set)
}

func benchRequest(body []byte) *http.Request {
	req := httptest.NewRequest(http.MethodPost, "/v1/recommend", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	return req
}

// BenchmarkRidServe drives the full handler stack — mux, robustness
// envelope, decode, lock-free snapshot evaluation, single-write encode
// — through in-process ResponseWriters, so the numbers isolate the
// serving hot path from kernel networking.
//
//   - mode=serve is the sequential per-request cost; its allocs/op pins
//     the "hot path allocates only for JSON encode/decode" claim.
//   - mode=p99 reports the 99th-percentile request latency as its
//     ns/op column (via ReportMetric), so the committed baseline gates
//     tail latency, not just the mean.
//   - mode=throughput hammers the handler from GOMAXPROCS goroutines;
//     ns/op is wall time per request under contention, and req/s is
//     reported alongside for the experiment log.
//
// scripts/bench.sh snapshots all three into BENCH_8.json; CI's
// benchgate step fails the build if any regresses beyond tolerance.
func BenchmarkRidServe(b *testing.B) {
	b.Run("mode=serve", func(b *testing.B) {
		s, bodies := benchServer(b)
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rw := &recordWriter{header: http.Header{}}
			h.ServeHTTP(rw, benchRequest(bodies[i%len(bodies)]))
			if rw.status != http.StatusOK {
				b.Fatalf("request %d: status %d, body %s", i, rw.status, rw.buf.String())
			}
		}
	})

	b.Run("mode=p99", func(b *testing.B) {
		s, bodies := benchServer(b)
		h := s.Handler()
		lat := make([]int64, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rw := &recordWriter{header: http.Header{}}
			start := time.Now()
			h.ServeHTTP(rw, benchRequest(bodies[i%len(bodies)]))
			lat = append(lat, time.Since(start).Nanoseconds())
			if rw.status != http.StatusOK {
				b.Fatalf("request %d: status %d, body %s", i, rw.status, rw.buf.String())
			}
		}
		b.StopTimer()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p99 := lat[(len(lat)-1)*99/100]
		// Report the tail, not the mean, as this mode's ns/op: benchgate
		// records only the standard columns, so publishing p99 under
		// ns/op is what puts tail latency behind the regression gate.
		b.ReportMetric(float64(p99), "ns/op")
	})

	b.Run("mode=throughput", func(b *testing.B) {
		s, bodies := benchServer(b)
		h := s.Handler()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				rw := &recordWriter{header: http.Header{}}
				h.ServeHTTP(rw, benchRequest(bodies[i%len(bodies)]))
				if rw.status != http.StatusOK && rw.status != http.StatusServiceUnavailable {
					b.Fatalf("status %d, body %s", rw.status, rw.buf.String())
				}
				i++
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})
}
