package ridserver

// The chaos suite: a simulated fleet of clients hammers a small
// server while faults are injected — handler panics, overload bursts,
// failing and stalling reloads — and every successful answer must
// stay bit-identical to the offline experiments evaluation. The
// degradation ladder under test: overload sheds (503), panics are
// contained (500, process survives), a bad reload keeps the old
// snapshot, and drains finish admitted work.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/fstest"
	"time"

	"rimarket/internal/experiments"
	"rimarket/internal/faultfs"
	"rimarket/internal/gtrace"
	"rimarket/internal/obs"
	"rimarket/internal/workload"
)

// queryPool enumerates valid queries with their expected response
// bytes, so storm workers can fire deterministic traffic and verify
// answers without evaluating under load.
type queryPool struct {
	bodies []string
	want   [][]byte
}

func buildQueryPool(t testing.TB, set *experiments.DecisionSet) *queryPool {
	t.Helper()
	pool := &queryPool{}
	hours := []int{0, set.Horizon() / 3, set.Horizon() - 1}
	for ui := 0; ui < set.Users(); ui++ {
		for _, policy := range set.Policies() {
			for j := 0; j < set.Reserved(ui) && j < 3; j++ {
				for _, h := range hours {
					q := experiments.Query{User: set.UserName(ui), Policy: policy, Instance: j, Hour: h}
					pool.bodies = append(pool.bodies, mustJSONTB(t, q))
					pool.want = append(pool.want, offlineBytes(t, set, q))
				}
			}
		}
	}
	if len(pool.bodies) == 0 {
		t.Fatal("empty query pool")
	}
	return pool
}

func mustJSONTB(t testing.TB, q experiments.Query) string {
	t.Helper()
	b, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestChaosStorm is the headline scenario: 8 clients, a 4-slot
// admission gate, one request in eight injected to panic, and a
// reloader flapping between healthy and failing loads — all at once.
// Invariants: every 200 carries offline-identical bytes, every 500
// maps to an injected panic, every 503 carries Retry-After, and the
// server exits the storm serving correctly.
func TestChaosStorm(t *testing.T) {
	set := testSet(t)
	pool := buildQueryPool(t, set)
	m := obs.New(obs.SystemClock)

	var failLoads atomic.Bool
	load := func(ctx context.Context) (*experiments.DecisionSet, error) {
		if failLoads.Load() {
			return nil, fmt.Errorf("chaos: injected load failure")
		}
		return set, nil
	}
	s, url, shutdown := startServer(t, Config{Load: load, MaxInflight: 4, Metrics: m})
	s.chaos = func(r *http.Request) {
		if r.Header.Get("X-Chaos") == "panic" {
			panic("chaos storm panic")
		}
	}

	tr := &http.Transport{MaxIdleConnsPerHost: 16}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	const workers, perWorker = 8, 40
	var (
		wg          sync.WaitGroup
		got200      atomic.Int64
		got500      atomic.Int64
		got503      atomic.Int64
		divergences atomic.Int64
		badStatus   atomic.Int64
	)
	stopReload := make(chan struct{})
	var reloadWG sync.WaitGroup
	reloadWG.Add(1)
	go func() {
		defer reloadWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopReload:
				return
			default:
			}
			failLoads.Store(i%2 == 1)
			_ = s.Reload(context.Background()) // failures roll back; either way serving continues
			time.Sleep(time.Millisecond)
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < perWorker; i++ {
				qi := rng.Intn(len(pool.bodies))
				injectPanic := rng.Intn(8) == 0
				req, err := http.NewRequest(http.MethodPost, url+"/v1/recommend", strings.NewReader(pool.bodies[qi]))
				if err != nil {
					t.Error(err)
					return
				}
				if injectPanic {
					req.Header.Set("X-Chaos", "panic")
				}
				resp, err := client.Do(req)
				if err != nil {
					t.Errorf("worker %d: transport error: %v", w, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					got200.Add(1)
					if injectPanic {
						t.Errorf("worker %d: panic-injected request answered 200", w)
					}
					if !bytes.Equal(body, pool.want[qi]) {
						divergences.Add(1)
					}
				case http.StatusInternalServerError:
					got500.Add(1)
					if !injectPanic {
						t.Errorf("worker %d: clean request answered 500: %s", w, body)
					}
				case http.StatusServiceUnavailable:
					got503.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("worker %d: 503 without Retry-After", w)
					}
				default:
					badStatus.Add(1)
					t.Errorf("worker %d: unexpected status %d: %s", w, resp.StatusCode, body)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopReload)
	reloadWG.Wait()

	if divergences.Load() != 0 {
		t.Fatalf("%d of %d successful answers diverged from the offline evaluation", divergences.Load(), got200.Load())
	}
	if got200.Load() == 0 {
		t.Fatal("storm produced no successful responses")
	}
	if got, want := m.ServePanics.Value(), got500.Load(); got != want {
		t.Errorf("panic counter = %d, but clients saw %d 500s", got, want)
	}
	t.Logf("storm: %d ok, %d panicked, %d shed (reloads: %d ok, %d failed)",
		got200.Load(), got500.Load(), got503.Load(), m.SnapshotReloads.Value(), m.SnapshotReloadFails.Value())

	// The storm is over: the snapshot must still answer exactly.
	s.chaos = nil
	status, _, body := postRecommend(t, url, pool.bodies[0])
	if status != http.StatusOK || !bytes.Equal(body, pool.want[0]) {
		t.Fatalf("post-storm request: status %d body %s", status, body)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("post-storm drain: %v", err)
	}
}

// traceCorpus renders n single-user EC2 usage logs into an in-memory
// directory, the substrate the reload-stall scenario loads through
// faultfs.
func traceCorpus(t testing.TB, n int) fstest.MapFS {
	t.Helper()
	m := fstest.MapFS{}
	for i := 0; i < n; i++ {
		var buf bytes.Buffer
		tr := workload.Trace{
			User:   fmt.Sprintf("app-%02d", i),
			Demand: []int{i + 1, i + 2, i + 3, i + 2, i + 1, i + 4, i + 2, i + 3},
		}
		if err := gtrace.WriteEC2Log(&buf, tr); err != nil {
			t.Fatal(err)
		}
		m[fmt.Sprintf("app-%02d.csv", i)] = &fstest.MapFile{Data: buf.Bytes()}
	}
	return m
}

// TestReloadStallKeepsOldSnapshot drives the SIGHUP failure path end
// to end with the faultfs stall mode: a reload whose backing store
// stalls past ReloadTimeout fails, the old snapshot keeps serving
// bit-identically, and once the stall clears the next reload swaps in
// the new data.
func TestReloadStallKeepsOldSnapshot(t *testing.T) {
	cfg := experiments.TestScaleConfig()
	cfg.Hours = 120 // short horizon: replays stay cheap for 3 trace users
	cfg.Instance.PeriodHours = 60
	cfg.Instance.Upfront = cfg.Instance.Upfront / 12

	clean := traceCorpus(t, 3)
	stalled := faultfs.New(clean)
	// Every read of the stalled file sleeps far past the reload budget,
	// so the first read alone blows the deadline — deterministically.
	stalled.InjectStall("app-00.csv", 500*time.Millisecond)

	var mu sync.Mutex
	useStalled := true
	load := func(ctx context.Context) (*experiments.DecisionSet, error) {
		mu.Lock()
		st := useStalled
		mu.Unlock()
		var traces []workload.Trace
		var err error
		if st {
			traces, _, err = gtrace.LoadEC2LogFS(stalled, gtrace.LoadOptions{Policy: gtrace.Strict})
		} else {
			traces, _, err = gtrace.LoadEC2LogFS(clean, gtrace.LoadOptions{Policy: gtrace.Strict})
		}
		if err != nil {
			return nil, err
		}
		// The loader honors the reload budget: a stalled read that ate
		// the deadline fails the reload here.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		plan, err := experiments.PlanTraces(ctx, cfg, traces)
		if err != nil {
			return nil, err
		}
		return plan.Decisions(ctx)
	}

	// Initial load: stall-free (the stalled file is only injected for
	// reloads below), so bring the server up from the clean corpus.
	mu.Lock()
	useStalled = false
	mu.Unlock()
	m := obs.New(obs.SystemClock)
	s, err := New(context.Background(), Config{Load: load, ReloadTimeout: 50 * time.Millisecond, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Snapshot()
	q := experiments.Query{User: "app-00", Policy: before.Policies()[0], Instance: 0, Hour: 0}
	wantBytes := offlineBytes(t, before, q)

	// Reload through the stalled filesystem: must fail and roll back.
	mu.Lock()
	useStalled = true
	mu.Unlock()
	if err := s.Reload(context.Background()); err == nil {
		t.Fatal("stalled reload reported success")
	}
	if s.Snapshot() != before {
		t.Fatal("stalled reload swapped the snapshot")
	}
	if m.SnapshotReloadFails.Value() != 1 {
		t.Errorf("reload-fail counter = %d, want 1", m.SnapshotReloadFails.Value())
	}
	if got, err := before.Evaluate(q); err != nil {
		t.Fatal(err)
	} else if b, _ := json.Marshal(got); !bytes.Equal(append(b, '\n'), wantBytes) {
		t.Fatal("old snapshot no longer answers identically after failed reload")
	}

	// Stall clears: the next reload succeeds and swaps.
	mu.Lock()
	useStalled = false
	mu.Unlock()
	if err := s.Reload(context.Background()); err != nil {
		t.Fatalf("clean reload after stall failed: %v", err)
	}
	if m.SnapshotReloads.Value() != 1 {
		t.Errorf("reload counter = %d, want 1", m.SnapshotReloads.Value())
	}
}

// TestServeCycleNoGoroutineLeak runs repeated start/serve/drain/stop
// cycles — with traffic — and requires the goroutine count to settle
// back to its baseline: a daemon that leaks per lifecycle is a daemon
// that dies on the operator who restarts it nightly.
func TestServeCycleNoGoroutineLeak(t *testing.T) {
	set := testSet(t) // build before the baseline: the pool is shared state
	tr := &http.Transport{DisableKeepAlives: true}
	client := &http.Client{Transport: tr}
	baseline := runtime.NumGoroutine()

	for cycle := 0; cycle < 8; cycle++ {
		s, err := New(context.Background(), Config{Load: staticLoader(set)})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() { errc <- s.Serve(ctx, ln) }()
		waitReady(t, s)

		for i := 0; i < 3; i++ {
			resp, err := client.Post("http://"+ln.Addr().String()+"/v1/recommend", "application/json",
				strings.NewReader(mustJSONTB(t, experiments.Query{User: set.UserName(0), Policy: set.Policies()[0]})))
			if err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("cycle %d: status %d", cycle, resp.StatusCode)
			}
		}
		if err := s.Reload(ctx); err != nil {
			t.Fatalf("cycle %d reload: %v", cycle, err)
		}
		cancel()
		if err := <-errc; err != nil {
			t.Fatalf("cycle %d drain: %v", cycle, err)
		}
	}
	tr.CloseIdleConnections()
	settleGoroutines(t, baseline)
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline (plus scheduler slack) or fails.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	const slack = 2
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d", runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestObsParityResponseBytes pins that observability never perturbs
// answers: a metrics-and-logging server and a bare one serve
// byte-identical responses for an identical request sequence,
// successes and errors alike.
func TestObsParityResponseBytes(t *testing.T) {
	set := testSet(t)
	_, urlOn, shutdownOn := startServer(t, Config{Load: staticLoader(set), Metrics: obs.New(obs.SystemClock), Log: io.Discard})
	defer shutdownOn()
	_, urlOff, shutdownOff := startServer(t, Config{Load: staticLoader(set)})
	defer shutdownOff()

	pool := buildQueryPool(t, set)
	bodies := append([]string{}, pool.bodies...)
	// Error-path requests ride along: parity covers the whole surface.
	bodies = append(bodies,
		`{"user":"nobody","policy":"x","hour":0}`,
		`{not json`,
		mustJSONTB(t, experiments.Query{User: set.UserName(0), Policy: set.Policies()[0], Hour: -5}),
	)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 64; i++ {
		body := bodies[rng.Intn(len(bodies))]
		stOn, _, bOn := postRecommend(t, urlOn, body)
		stOff, _, bOff := postRecommend(t, urlOff, body)
		if stOn != stOff || !bytes.Equal(bOn, bOff) {
			t.Fatalf("obs parity broken for %s:\n  with metrics:    %d %s\n  without metrics: %d %s",
				body, stOn, bOn, stOff, bOff)
		}
	}
}
