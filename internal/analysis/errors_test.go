package analysis

import (
	"math"
	"strings"
	"testing"

	"rimarket/internal/core"
	"rimarket/internal/pricing"
)

// These tests exercise the error and edge paths of the theory module:
// degenerate checkpoints, schedules of the wrong length, invalid
// parameters, and the diverging case-2 denominator.

func TestAdversarialSchedulesErrors(t *testing.T) {
	// A two-hour period makes k = 1/4 round to age 1 (fine) but a
	// one-hour period degenerates every checkpoint.
	tiny := pricing.InstanceType{
		Name:           "tiny",
		OnDemandHourly: 1,
		Upfront:        1,
		ReservedHourly: 0.5,
		PeriodHours:    1,
	}
	p, err := core.NewThreshold(tiny, 0.5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := AdversarialSchedules(p); err == nil {
		t.Error("degenerate checkpoint accepted")
	} else if !strings.Contains(err.Error(), "degenerate") {
		t.Errorf("error %q does not mention the degenerate checkpoint", err)
	}
	if _, err := WorstMeasuredRatio(p, 0.5); err == nil {
		t.Error("WorstMeasuredRatio accepted degenerate checkpoint")
	}
}

func TestMeasuredRatioErrors(t *testing.T) {
	it := cardTheta2()
	policy, err := core.NewAT2(it, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong-length schedule propagates the core error.
	if _, err := MeasuredRatio(make([]bool, 3), policy, 0.8); err == nil {
		t.Error("short schedule accepted")
	}
	// Invalid discount propagates.
	if _, err := MeasuredRatio(make([]bool, it.PeriodHours), policy, 2); err == nil {
		t.Error("bad discount accepted")
	}
}

func TestVerifyBoundErrors(t *testing.T) {
	it := cardTheta2()
	policy, err := core.NewAT2(it, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := VerifyBound(make([]bool, 5), policy, 0.8); err == nil {
		t.Error("short schedule accepted")
	}
	if _, _, err := VerifyBound(make([]bool, it.PeriodHours), policy, -1); err == nil {
		t.Error("negative discount accepted")
	}
}

func TestRatioForFractionExtremeEarlyCheckpoint(t *testing.T) {
	// At an extreme early checkpoint with a = 1, the case-2 bound
	// 1/(1-(1-k)a) blows up (but stays finite: (1-k)*a < 1 whenever
	// k > 0 and a <= 1, so the division-guard branch is structurally
	// unreachable for validated inputs) and dominates case 1.
	b, err := RatioForFraction(0.005, 0.1, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Regime != RegimeKeepMistake {
		t.Errorf("regime = %v, want case-2", b.Regime)
	}
	if math.IsInf(b.Ratio, 0) || math.IsNaN(b.Ratio) || b.Ratio < 100 {
		t.Errorf("ratio = %v, want a large finite case-2 bound (1/0.005 = 200)", b.Ratio)
	}
}

func TestAnalyzeCatalogPropagatesBadDiscount(t *testing.T) {
	cat := pricing.StandardLinuxUSEast()
	if _, err := AnalyzeCatalog(cat, core.Fraction3T4, 2); err == nil {
		t.Error("bad discount accepted")
	}
	if _, err := AnalyzeCatalog(cat, 0, 0.5); err == nil {
		t.Error("bad fraction accepted")
	}
}

func TestMeasuredRatioZeroCostGuard(t *testing.T) {
	// A card with a zero reserved rate and a = 1, schedule empty: OPT
	// sells at the checkpoint for income a*R*(1-k) leaving cost
	// R(1 - a*(1-k)) > 0 — so the guard should not fire for valid
	// cards; this documents that positive OPT cost is structural.
	it := pricing.InstanceType{
		Name:           "freehourly",
		OnDemandHourly: 1,
		Upfront:        10,
		ReservedHourly: 0,
		PeriodHours:    100,
	}
	policy, err := core.NewAT2(it, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := MeasuredRatio(make([]bool, 100), policy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r < 1-1e-9 {
		t.Errorf("ratio = %v, want >= 1", r)
	}
}
