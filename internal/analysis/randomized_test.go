package analysis

import (
	"testing"

	"rimarket/internal/core"
)

func TestRandomizedExpectedRatioValidation(t *testing.T) {
	it := cardTheta2()
	policy, err := core.NewRandomized(it, 0.8, core.ExponentialFractions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched := make([]bool, it.PeriodHours)
	if _, err := RandomizedExpectedRatio(sched, policy, 0); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := RandomizedExpectedRatio(make([]bool, 3), policy, 10); err == nil {
		t.Error("short schedule accepted")
	}
}

func TestRandomizedExpectedRatioIdleSchedule(t *testing.T) {
	// On an always-idle schedule every checkpoint sells; earlier sales
	// earn more, so the expected ratio is above 1 but modest.
	it := cardTheta2()
	policy, err := core.NewRandomized(it, 0.8, core.ExponentialFractions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched := make([]bool, it.PeriodHours)
	r, err := RandomizedExpectedRatio(sched, policy, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r < 1 || r > 5 {
		t.Errorf("expected ratio = %v, want in [1, 5]", r)
	}
}

// TestRandomizedBeatsFixedOnItsWorstCase quantifies the paper's
// Section VII speculation: on the deterministic algorithm's own
// worst-case schedule, the randomized algorithm's expected ratio is
// strictly better, because only some draws land in the trap.
func TestRandomizedBeatsFixedOnItsWorstCase(t *testing.T) {
	it := cardTheta2()
	const a = 0.8
	fixed, err := core.NewAT4(it, a)
	if err != nil {
		t.Fatal(err)
	}
	sellMistake, keepMistake, err := AdversarialSchedules(fixed)
	if err != nil {
		t.Fatal(err)
	}
	randomized, err := core.NewRandomized(it, a, core.ExponentialFractions{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for name, sched := range map[string][]bool{"sell-mistake": sellMistake, "keep-mistake": keepMistake} {
		fixedRatio, err := FixedUnrestrictedRatio(sched, fixed)
		if err != nil {
			t.Fatal(err)
		}
		randRatio, err := RandomizedExpectedRatio(sched, randomized, 128)
		if err != nil {
			t.Fatal(err)
		}
		if randRatio > fixedRatio+1e-9 {
			t.Errorf("%s: randomized expected ratio %v worse than fixed %v",
				name, randRatio, fixedRatio)
		}
		if randRatio < 1-1e-9 {
			t.Errorf("%s: expected ratio %v below 1", name, randRatio)
		}
	}
}
