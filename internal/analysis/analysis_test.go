package analysis

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rimarket/internal/core"
	"rimarket/internal/pricing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// cardTheta2: p = 1, R = 120, alpha = 0.25, T = 240 -> theta = 2.
func cardTheta2() pricing.InstanceType {
	return pricing.InstanceType{
		Name:           "adv.large",
		OnDemandHourly: 1.0,
		Upfront:        120,
		ReservedHourly: 0.25,
		PeriodHours:    240,
	}
}

func TestRegimeString(t *testing.T) {
	if !strings.Contains(RegimeSellMistake.String(), "case-1") {
		t.Error(RegimeSellMistake.String())
	}
	if !strings.Contains(RegimeKeepMistake.String(), "case-2") {
		t.Error(RegimeKeepMistake.String())
	}
	if Regime(7).String() != "Regime(7)" {
		t.Error(Regime(7).String())
	}
}

func TestRatioForFractionValidation(t *testing.T) {
	tests := []struct {
		name        string
		k, alpha, a float64
		theta       float64
	}{
		{name: "k zero", k: 0, alpha: 0.25, a: 0.5, theta: 4},
		{name: "k one", k: 1, alpha: 0.25, a: 0.5, theta: 4},
		{name: "alpha one", k: 0.5, alpha: 1, a: 0.5, theta: 4},
		{name: "a negative", k: 0.5, alpha: 0.25, a: -0.1, theta: 4},
		{name: "a above one", k: 0.5, alpha: 0.25, a: 1.1, theta: 4},
		{name: "theta zero", k: 0.5, alpha: 0.25, a: 0.5, theta: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := RatioForFraction(tt.k, tt.alpha, tt.a, tt.theta); err == nil {
				t.Error("accepted invalid input")
			}
		})
	}
}

func TestRatioA3T4MatchesProposition1(t *testing.T) {
	// For all alpha < 0.36 and a in [0, 1], the paper proves
	// alpha + a/4 + 4/(4-a) < 2, so case 1 binds: 2 - alpha - a/4.
	for _, alpha := range []float64{0.1, 0.25, 0.35} {
		for _, a := range []float64{0, 0.2, 0.5, 0.8, 1.0} {
			b, err := RatioA3T4(alpha, a)
			if err != nil {
				t.Fatal(err)
			}
			want := 2 - alpha - a/4
			if !almostEqual(b.Ratio, want, 1e-12) {
				t.Errorf("RatioA3T4(%v, %v) = %v, want %v", alpha, a, b.Ratio, want)
			}
			if b.Regime != RegimeSellMistake {
				t.Errorf("RatioA3T4(%v, %v) regime = %v, want case-1", alpha, a, b.Regime)
			}
			// Cross-check the paper's regime condition.
			if alpha+a/4+4/(4-a) > 2 {
				t.Errorf("paper condition violated for alpha=%v a=%v", alpha, a)
			}
		}
	}
}

func TestRatioAT2MatchesProposition2(t *testing.T) {
	for _, alpha := range []float64{0.1, 0.25, 0.35} {
		for _, a := range []float64{0, 0.3, 0.7, 1.0} {
			b, err := RatioAT2(alpha, a)
			if err != nil {
				t.Fatal(err)
			}
			case1 := 3 - 2*alpha - a/2
			case2 := 2 / (2 - a)
			want := math.Max(case1, case2)
			if !almostEqual(b.Ratio, want, 1e-12) {
				t.Errorf("RatioAT2(%v, %v) = %v, want %v", alpha, a, b.Ratio, want)
			}
			// Paper condition alpha + a/4 + 1/(2-a) <= 3/2 <=> case1 binds.
			if cond := alpha + a/4 + 1/(2-a); cond <= 1.5 && b.Regime != RegimeSellMistake {
				t.Errorf("condition %v <= 1.5 but regime %v", cond, b.Regime)
			}
		}
	}
}

func TestRatioAT4MatchesProposition3(t *testing.T) {
	for _, alpha := range []float64{0.1, 0.25, 0.35} {
		for _, a := range []float64{0, 0.3, 0.7, 1.0} {
			b, err := RatioAT4(alpha, a)
			if err != nil {
				t.Fatal(err)
			}
			case1 := 4 - 3*alpha - 3*a/4
			case2 := 4 / (4 - 3*a)
			want := math.Max(case1, case2)
			if !almostEqual(b.Ratio, want, 1e-12) {
				t.Errorf("RatioAT4(%v, %v) = %v, want %v", alpha, a, b.Ratio, want)
			}
		}
	}
}

func TestRatioOrderingAcrossFractions(t *testing.T) {
	// Section V: later checkpoints give better (smaller) ratios:
	// A_{3T/4} <= A_{T/2} <= A_{T/4} in bound.
	alpha, a := 0.25, 0.8
	b34, err := RatioA3T4(alpha, a)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := RatioAT2(alpha, a)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := RatioAT4(alpha, a)
	if err != nil {
		t.Fatal(err)
	}
	if !(b34.Ratio < b2.Ratio && b2.Ratio < b4.Ratio) {
		t.Errorf("bounds not ordered: %v, %v, %v", b34.Ratio, b2.Ratio, b4.Ratio)
	}
}

func TestD2XLargeHeadlineRatio(t *testing.T) {
	// The paper's abstract: for d2.xlarge (alpha = 0.25) A_{3T/4}
	// achieves 2 - alpha - a/4; with a = 0.8 that is 1.55.
	b, err := RatioA3T4(0.25, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(b.Ratio, 1.55, 1e-12) {
		t.Errorf("headline ratio = %v, want 1.55", b.Ratio)
	}
}

func TestBoundForInstanceUsesOwnTheta(t *testing.T) {
	it := cardTheta2() // theta = 2
	b, err := BoundForInstance(it, core.Fraction3T4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// case1 = 1 + 0.25*0.75*2 - 0.25*0.8 = 1.175; case2 = 1/(1-0.2) = 1.25.
	if !almostEqual(b.Ratio, 1.25, 1e-12) || b.Regime != RegimeKeepMistake {
		t.Errorf("bound = %+v, want 1.25 case-2", b)
	}
	if _, err := BoundForInstance(pricing.InstanceType{}, 0.5, 0.5); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestMeasuredRatioIdleInstance(t *testing.T) {
	// Idle instance, A_{T/2}: online sells at T/2 (cost R - aR/2); the
	// restricted OPT also sells at T/2 (the earliest allowed, maximal
	// income). Ratio = 1.
	it := cardTheta2()
	policy, err := core.NewAT2(it, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	schedule := make([]bool, it.PeriodHours)
	r, err := MeasuredRatio(schedule, policy, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1.0, 1e-9) {
		t.Errorf("ratio = %v, want 1.0", r)
	}
}

func TestVerifyBoundAdversarial(t *testing.T) {
	it := cardTheta2()
	for _, k := range []float64{core.Fraction3T4, core.FractionT2, core.FractionT4} {
		for _, a := range []float64{0.2, 0.5, 0.8, 1.0} {
			policy, err := core.NewThreshold(it, a, k)
			if err != nil {
				t.Fatal(err)
			}
			sell, keep, err := AdversarialSchedules(policy)
			if err != nil {
				t.Fatal(err)
			}
			for name, sched := range map[string][]bool{"sell-mistake": sell, "keep-mistake": keep} {
				measured, bound, err := VerifyBound(sched, policy, a)
				if err != nil {
					t.Errorf("k=%v a=%v %s: %v", k, a, name, err)
					continue
				}
				if measured > bound.Ratio+1e-9 {
					t.Errorf("k=%v a=%v %s: measured %v > bound %v", k, a, name, measured, bound.Ratio)
				}
			}
		}
	}
}

func TestAdversarialSchedulesApproachBound(t *testing.T) {
	// The worst-case constructions must actually hurt: the measured
	// ratio should exceed 1 by a reasonable share of the bound's excess.
	it := cardTheta2()
	policy, err := core.NewA3T4(it, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := WorstMeasuredRatio(policy, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := BoundForInstance(it, core.Fraction3T4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if worst <= 1.0 {
		t.Fatalf("worst measured ratio %v does not exceed 1", worst)
	}
	if worst > bound.Ratio+1e-9 {
		t.Fatalf("worst measured ratio %v exceeds bound %v", worst, bound.Ratio)
	}
	if excess := (worst - 1) / (bound.Ratio - 1); excess < 0.25 {
		t.Errorf("adversarial ratio %v achieves only %.0f%% of the bound's excess %v",
			worst, excess*100, bound.Ratio)
	}
}

func TestAnalyzeCatalog(t *testing.T) {
	cat := pricing.StandardLinuxUSEast()
	rep, err := AnalyzeCatalog(cat, core.Fraction3T4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstInstance == "" || rep.WorstBound.Ratio <= 1 {
		t.Errorf("report = %+v", rep)
	}
	// The paper's conservative closed form with alpha_max and theta = 4
	// must dominate every per-instance bound... for case-1-binding cards;
	// globally it must at least dominate the worst case-1 card and be a
	// sensible ratio.
	if rep.PaperBound.Ratio <= 1 || rep.PaperBound.Ratio > 2 {
		t.Errorf("paper bound = %+v outside (1, 2]", rep.PaperBound)
	}
	empty, err := pricing.NewCatalog(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeCatalog(empty, 0.75, 0.8); err == nil {
		t.Error("empty catalog accepted")
	}
}

// TestPropertyMeasuredNeverExceedsBound is the reproduction's central
// theory check: for random schedules, canonical fractions and selling
// discounts, the measured online/OPT ratio never exceeds the proven
// per-instance bound.
func TestPropertyMeasuredNeverExceedsBound(t *testing.T) {
	it := cardTheta2()
	f := func(raw []uint8, fracSel, aSel uint8) bool {
		k := []float64{core.Fraction3T4, core.FractionT2, core.FractionT4}[int(fracSel)%3]
		a := float64(int(aSel)%10+1) / 10
		policy, err := core.NewThreshold(it, a, k)
		if err != nil {
			return false
		}
		schedule := make([]bool, it.PeriodHours)
		for i := range schedule {
			if i < len(raw) {
				schedule[i] = raw[i]%2 == 0
			}
		}
		_, _, err = VerifyBound(schedule, policy, a)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBurstySchedulesRespectBound stresses block-structured
// schedules (the shape the proofs' adversary uses) rather than IID
// noise.
func TestPropertyBurstySchedulesRespectBound(t *testing.T) {
	it := cardTheta2()
	T := it.PeriodHours
	f := func(busyStart, busyLen, fracSel, aSel uint8) bool {
		k := []float64{core.Fraction3T4, core.FractionT2, core.FractionT4}[int(fracSel)%3]
		a := float64(int(aSel)%10+1) / 10
		policy, err := core.NewThreshold(it, a, k)
		if err != nil {
			return false
		}
		start := int(busyStart) % T
		length := int(busyLen) % T
		schedule := make([]bool, T)
		for h := start; h < start+length && h < T; h++ {
			schedule[h] = true
		}
		_, _, err = VerifyBound(schedule, policy, a)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
