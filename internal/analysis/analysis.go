// Package analysis implements the paper's competitive-ratio theory:
// the proven bounds for A_{3T/4}, A_{T/2} and A_{T/4} (Propositions 1,
// 2a/2b and 3a/3b), their regime conditions, a generalization to an
// arbitrary checkpoint fraction, adversarial worst-case schedule
// constructions from the proofs, and empirical validation that measured
// online/OPT ratios never exceed the proven bounds.
package analysis

import (
	"fmt"

	"rimarket/internal/core"
	"rimarket/internal/pricing"
)

// ThetaMax is the paper's measured upper bound on theta = p*T/R over
// all 1-year standard Linux US-East instances ("theta in (1, 4)",
// Section IV.C). The named ratio formulas below substitute this value,
// which is how the paper turns Case-1 bounds like 1 + theta*(1-alpha)/4
// into 2 - alpha - a/4.
const ThetaMax = 4.0

// Regime labels which of a proposition's two cases dominates.
type Regime int

// Regimes. Enums start at 1 so the zero value is invalid.
const (
	// RegimeSellMistake is the proofs' Case 1: the online algorithm sold
	// but demand arrived afterwards (bound grows with theta).
	RegimeSellMistake Regime = iota + 1
	// RegimeKeepMistake is the proofs' Case 2: the online algorithm kept
	// but demand stopped (bound 1/(1-(1-k)a)).
	RegimeKeepMistake
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case RegimeSellMistake:
		return "case-1 (sell mistake)"
	case RegimeKeepMistake:
		return "case-2 (keep mistake)"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// Bound is a proven competitive-ratio bound.
type Bound struct {
	// Ratio is the competitive ratio.
	Ratio float64
	// Regime identifies the binding case.
	Regime Regime
}

// RatioForFraction returns the proven competitive-ratio bound of the
// generalized A_{kT} for checkpoint fraction k, reservation discount
// alpha, selling discount a, and theta = p*T/R:
//
//	case 1:  1 + (1-k)*(1-alpha)*theta - (1-k)*a
//	case 2:  1 / (1 - (1-k)*a)
//
// The bound is the larger of the two. With k = 3/4 and theta = 4 this
// reproduces Proposition 1's 2 - alpha - a/4; with k = 1/2 and 1/4 it
// reproduces Propositions 2 and 3.
func RatioForFraction(k, alpha, a, theta float64) (Bound, error) {
	switch {
	case k <= 0 || k >= 1:
		return Bound{}, fmt.Errorf("analysis: fraction %v outside (0, 1)", k)
	case alpha < 0 || alpha >= 1:
		return Bound{}, fmt.Errorf("analysis: alpha %v outside [0, 1)", alpha)
	case a < 0 || a > 1:
		return Bound{}, fmt.Errorf("analysis: selling discount %v outside [0, 1]", a)
	case theta <= 0:
		return Bound{}, fmt.Errorf("analysis: theta %v must be positive", theta)
	}
	rem := 1 - k
	case1 := 1 + rem*(1-alpha)*theta - rem*a
	denom := 1 - rem*a
	if denom <= 0 {
		// Only possible for k+a beyond the paper's ranges; the case-2
		// bound diverges and dominates.
		return Bound{Ratio: case1, Regime: RegimeSellMistake}, nil
	}
	case2 := 1 / denom
	if case2 > case1 {
		return Bound{Ratio: case2, Regime: RegimeKeepMistake}, nil
	}
	return Bound{Ratio: case1, Regime: RegimeSellMistake}, nil
}

// RatioA3T4 returns Proposition 1's bound for A_{3T/4} at theta = 4:
// 2 - alpha - a/4 when alpha + a/4 + 4/(4-a) <= 2, else 4/(4-a).
func RatioA3T4(alpha, a float64) (Bound, error) {
	return RatioForFraction(core.Fraction3T4, alpha, a, ThetaMax)
}

// RatioAT2 returns Propositions 2a/2b's bound for A_{T/2} at theta = 4:
// 3 - 2*alpha - a/2 when alpha + a/4 + 1/(2-a) <= 3/2, else 2/(2-a).
func RatioAT2(alpha, a float64) (Bound, error) {
	return RatioForFraction(core.FractionT2, alpha, a, ThetaMax)
}

// RatioAT4 returns Propositions 3a/3b's bound for A_{T/4} at theta = 4:
// 4 - 3*alpha - 3*a/4 when alpha + a/4 + 4/(12-9a) <= 4/3, else
// 4/(4-3a).
func RatioAT4(alpha, a float64) (Bound, error) {
	return RatioForFraction(core.FractionT4, alpha, a, ThetaMax)
}

// BoundForInstance returns the proven bound for A_{kT} on a concrete
// price card, using the card's own alpha and theta.
func BoundForInstance(it pricing.InstanceType, k, a float64) (Bound, error) {
	if err := it.Validate(); err != nil {
		return Bound{}, err
	}
	return RatioForFraction(k, it.Alpha(), a, it.Theta())
}

// MeasuredRatio runs the online algorithm A_{kT} and the paper's
// restricted offline OPT (which sells no earlier than the checkpoint,
// per Section IV.C) on one instance's busy schedule and returns
// onlineCost / optCost under the proofs' accounting (BillWhenUsed).
func MeasuredRatio(schedule []bool, policy core.Threshold, a float64) (float64, error) {
	it := policy.Instance()
	params := core.OfflineParams{
		Instance:        it,
		SellingDiscount: a,
		Billing:         core.BillWhenUsed,
		MinSellAge:      policy.CheckpointAge(it.PeriodHours),
	}
	opt, err := core.OptimalSell(schedule, params)
	if err != nil {
		return 0, err
	}
	online, err := core.ThresholdCost(schedule, policy, core.BillWhenUsed)
	if err != nil {
		return 0, err
	}
	if opt.Cost <= 0 {
		return 0, fmt.Errorf("analysis: OPT cost %v not positive", opt.Cost)
	}
	return online / opt.Cost, nil
}

// VerifyBound checks that the measured online/OPT ratio on the given
// schedule does not exceed the proven bound for the instance (with its
// own alpha and theta). It returns the measured ratio and the bound.
func VerifyBound(schedule []bool, policy core.Threshold, a float64) (measured float64, bound Bound, err error) {
	it := policy.Instance()
	bound, err = BoundForInstance(it, policy.Fraction(), a)
	if err != nil {
		return 0, Bound{}, err
	}
	measured, err = MeasuredRatio(schedule, policy, a)
	if err != nil {
		return 0, Bound{}, err
	}
	if measured > bound.Ratio+1e-9 {
		return measured, bound, fmt.Errorf("analysis: measured ratio %v exceeds proven bound %v (%v)",
			measured, bound.Ratio, bound.Regime)
	}
	return measured, bound, nil
}
