package analysis

import (
	"fmt"
	"math"

	"rimarket/internal/core"
	"rimarket/internal/pricing"
)

// AdversarialSchedules constructs the worst-case per-instance busy
// schedules from the proofs of Propositions 1-3 for A_{kT}:
//
//   - Case 1 (sell mistake, epsilon = 1): the instance works just under
//     the break-even before the checkpoint — the online algorithm sells —
//     and demand then persists for the whole remaining period, which the
//     online algorithm must re-buy on-demand while OPT would have kept
//     (or sold only at the very end).
//   - Case 2 (keep mistake, epsilon = k): the instance works just at the
//     break-even before the checkpoint — the online algorithm keeps —
//     and demand then stops entirely, so the online algorithm carries a
//     useless reservation that OPT would have sold at the checkpoint.
//
// Both schedules place the pre-checkpoint busy hours at the front of
// the window; only their count matters to either algorithm.
func AdversarialSchedules(policy core.Threshold) (sellMistake, keepMistake []bool, err error) {
	it := policy.Instance()
	T := it.PeriodHours
	ck := policy.CheckpointAge(T)
	if ck <= 0 || ck >= T {
		return nil, nil, fmt.Errorf("analysis: degenerate checkpoint %d for period %d", ck, T)
	}
	beta := policy.BreakEven()

	// Just below break-even: floor(beta - epsilon), clamped to [0, ck].
	below := int(math.Ceil(beta)) - 1
	if below < 0 {
		below = 0
	}
	if below > ck {
		below = ck
	}
	// At or just above break-even: ceil(beta), clamped to [0, ck].
	above := int(math.Ceil(beta))
	if float64(above) < beta {
		above++
	}
	if above > ck {
		above = ck
	}

	sellMistake = make([]bool, T)
	for h := 0; h < below; h++ {
		sellMistake[h] = true
	}
	for h := ck; h < T; h++ {
		sellMistake[h] = true // demand persists after the (mistaken) sale
	}

	keepMistake = make([]bool, T)
	for h := 0; h < above; h++ {
		keepMistake[h] = true
	}
	// No demand after the checkpoint: the kept reservation is wasted.
	return sellMistake, keepMistake, nil
}

// WorstMeasuredRatio returns the larger of the two adversarial
// schedules' measured ratios for A_{kT} — the empirically achieved
// lower bound on the algorithm's competitive ratio.
func WorstMeasuredRatio(policy core.Threshold, a float64) (float64, error) {
	sell, keep, err := AdversarialSchedules(policy)
	if err != nil {
		return 0, err
	}
	r1, err := MeasuredRatio(sell, policy, a)
	if err != nil {
		return 0, err
	}
	r2, err := MeasuredRatio(keep, policy, a)
	if err != nil {
		return 0, err
	}
	return math.Max(r1, r2), nil
}

// CatalogReport summarizes the proven bound of one algorithm across a
// whole price catalog, as the paper does when it states "for all
// standard instances (Linux, US East) for 1-year terms".
type CatalogReport struct {
	// Fraction is the checkpoint fraction k.
	Fraction float64
	// SellingDiscount is a.
	SellingDiscount float64
	// WorstBound is the largest per-instance bound across the catalog.
	WorstBound Bound
	// WorstInstance names the instance attaining it.
	WorstInstance string
	// PaperBound is the bound with theta = ThetaMax (the closed form the
	// paper reports, e.g. 2 - alpha - a/4 with the catalog's largest
	// alpha... the paper substitutes each instance's own alpha, so this
	// uses the catalog's maximum alpha for a single conservative number).
	PaperBound Bound
}

// AnalyzeCatalog computes per-catalog bound statistics for A_{kT}.
func AnalyzeCatalog(cat *pricing.Catalog, k, a float64) (CatalogReport, error) {
	rep := CatalogReport{Fraction: k, SellingDiscount: a}
	if cat.Len() == 0 {
		return CatalogReport{}, fmt.Errorf("analysis: empty catalog")
	}
	for _, it := range cat.All() {
		b, err := BoundForInstance(it, k, a)
		if err != nil {
			return CatalogReport{}, fmt.Errorf("analysis: %s: %w", it.Name, err)
		}
		if b.Ratio > rep.WorstBound.Ratio {
			rep.WorstBound = b
			rep.WorstInstance = it.Name
		}
	}
	stats := cat.Stats()
	paper, err := RatioForFraction(k, stats.AlphaMax, a, ThetaMax)
	if err != nil {
		return CatalogReport{}, err
	}
	rep.PaperBound = paper
	return rep, nil
}
