package analysis

import (
	"fmt"

	"rimarket/internal/core"
)

// RandomizedExpectedRatio numerically computes the expected
// online/OPT ratio of the randomized algorithm A_rand on one fixed
// schedule: the checkpoint fraction k is integrated over the policy's
// distribution by stratified sampling (u = (i+0.5)/samples), the
// threshold rule is applied at each sampled k, and the expected cost is
// divided by the unrestricted offline optimum.
//
// Against an oblivious adversary (who fixes the schedule before the
// random draw) this is the quantity the paper's Section VII
// speculation is about. Note the benchmark here is the *unrestricted*
// OPT — free to sell at any age — because the randomized algorithm
// itself may decide anywhere in (0, T); the fixed algorithms' proven
// bounds use a restricted OPT and are not directly comparable.
func RandomizedExpectedRatio(schedule []bool, policy core.Randomized, samples int) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("analysis: samples %d must be positive", samples)
	}
	it := policy.Instance()
	a := policy.Discount()
	params := core.OfflineParams{
		Instance:        it,
		SellingDiscount: a,
		Billing:         core.BillWhenUsed,
		// MinSellAge 0: unrestricted OPT.
	}
	opt, err := core.OptimalSell(schedule, params)
	if err != nil {
		return 0, err
	}
	if opt.Cost <= 0 {
		return 0, fmt.Errorf("analysis: OPT cost %v not positive", opt.Cost)
	}

	var expected float64
	dist := policy.Dist()
	for i := 0; i < samples; i++ {
		u := (float64(i) + 0.5) / float64(samples)
		k := dist.Sample(u)
		fixed, err := core.NewThreshold(it, a, k)
		if err != nil {
			return 0, fmt.Errorf("analysis: sampled fraction %v: %w", k, err)
		}
		cost, err := core.ThresholdCost(schedule, fixed, core.BillWhenUsed)
		if err != nil {
			return 0, err
		}
		expected += cost
	}
	expected /= float64(samples)
	return expected / opt.Cost, nil
}

// FixedUnrestrictedRatio is the fixed algorithm A_{kT}'s measured
// ratio against the same unrestricted OPT, for apples-to-apples
// comparison with RandomizedExpectedRatio.
func FixedUnrestrictedRatio(schedule []bool, policy core.Threshold) (float64, error) {
	it := policy.Instance()
	params := core.OfflineParams{
		Instance:        it,
		SellingDiscount: policy.Discount(),
		Billing:         core.BillWhenUsed,
	}
	opt, err := core.OptimalSell(schedule, params)
	if err != nil {
		return 0, err
	}
	if opt.Cost <= 0 {
		return 0, fmt.Errorf("analysis: OPT cost %v not positive", opt.Cost)
	}
	online, err := core.ThresholdCost(schedule, policy, core.BillWhenUsed)
	if err != nil {
		return 0, err
	}
	return online / opt.Cost, nil
}
