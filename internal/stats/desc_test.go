package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{name: "empty", in: nil, want: 0},
		{name: "single", in: []float64{7}, want: 7},
		{name: "uniform", in: []float64{2, 2, 2, 2}, want: 2},
		{name: "mixed", in: []float64{1, 2, 3, 4}, want: 2.5},
		{name: "negative", in: []float64{-1, 1}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestSumKahanStability(t *testing.T) {
	// 1e8 spread across many small terms must not drift.
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = 0.1
	}
	if got, want := Sum(xs), 10000.0; !almostEqual(got, want, 1e-6) {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	tests := []struct {
		name    string
		in      []float64
		wantVar float64
	}{
		{name: "empty", in: nil, wantVar: 0},
		{name: "single", in: []float64{3}, wantVar: 0},
		{name: "constant", in: []float64{5, 5, 5}, wantVar: 0},
		{name: "spread", in: []float64{2, 4, 4, 4, 5, 5, 7, 9}, wantVar: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Variance(tt.in); !almostEqual(got, tt.wantVar, 1e-12) {
				t.Errorf("Variance = %v, want %v", got, tt.wantVar)
			}
			if got := StdDev(tt.in); !almostEqual(got, math.Sqrt(tt.wantVar), 1e-12) {
				t.Errorf("StdDev = %v, want %v", got, math.Sqrt(tt.wantVar))
			}
		})
	}
}

func TestFluctuationRatio(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{name: "empty", in: nil, want: 0},
		{name: "all zero", in: []float64{0, 0, 0}, want: 0},
		{name: "constant", in: []float64{4, 4, 4, 4}, want: 0},
		{name: "spread", in: []float64{2, 4, 4, 4, 5, 5, 7, 9}, want: 0.4},
		{name: "zero mean nonzero sigma", in: []float64{-1, 1}, want: math.Inf(1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := FluctuationRatio(tt.in)
			if math.IsInf(tt.want, 1) {
				if !math.IsInf(got, 1) {
					t.Errorf("FluctuationRatio = %v, want +Inf", got)
				}
				return
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("FluctuationRatio = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatalf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
	lo, hi, err := MinMax([]float64{3, -2, 9, 0})
	if err != nil {
		t.Fatalf("MinMax: %v", err)
	}
	if lo != -2 || hi != 9 {
		t.Errorf("MinMax = (%v, %v), want (-2, 9)", lo, hi)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		q    float64
		want float64
	}{
		{q: 0, want: 1},
		{q: 100, want: 10},
		{q: 50, want: 5.5},
		{q: 25, want: 3.25},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.q)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.q, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("Percentile(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) succeeded, want error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) succeeded, want error")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestNormalize(t *testing.T) {
	got, err := Normalize([]float64{2, 4, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for _, base := range []float64{0, math.NaN(), math.Inf(1)} {
		if _, err := Normalize([]float64{1}, base); err == nil {
			t.Errorf("Normalize(base=%v) succeeded, want error", base)
		}
	}
}

func TestFractions(t *testing.T) {
	xs := []float64{0.5, 0.9, 1.0, 1.1, 1.5}
	if got := FractionBelow(xs, 1.0); !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("FractionBelow = %v, want 0.4", got)
	}
	if got := FractionAbove(xs, 1.0); !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("FractionAbove = %v, want 0.4", got)
	}
	if got := FractionBelow(nil, 1.0); got != 0 {
		t.Errorf("FractionBelow(nil) = %v, want 0", got)
	}
	if got := FractionAbove(nil, 1.0); got != 0 {
		t.Errorf("FractionAbove(nil) = %v, want 0", got)
	}
}

func TestPropertyMeanBoundedByMinMax(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		lo, hi, err := MinMax(clean)
		if err != nil {
			return false
		}
		mu := Mean(clean)
		return mu >= lo-1e-6 && mu <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyNormalizeRoundTrip(t *testing.T) {
	f := func(xs []float64, base float64) bool {
		if base == 0 || math.IsNaN(base) || math.IsInf(base, 0) {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		normed, err := Normalize(xs, base)
		if err != nil {
			return false
		}
		for i := range normed {
			back := normed[i] * base
			tol := 1e-9 * math.Max(1, math.Abs(xs[i]))
			if math.IsInf(normed[i], 0) || math.IsNaN(back) {
				continue // overflow of extreme quick inputs is acceptable
			}
			if math.Abs(back-xs[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Errorf("summary = %+v", s)
	}
	if !almostEqual(s.Median, 5.5, 1e-12) {
		t.Errorf("median = %v, want 5.5", s.Median)
	}
	if !almostEqual(s.Mean, 5.5, 1e-12) {
		t.Errorf("mean = %v", s.Mean)
	}
	if !almostEqual(s.P90, 9.1, 1e-9) {
		t.Errorf("p90 = %v, want 9.1", s.P90)
	}
	if s.String() == "" || s.StdDev <= 0 {
		t.Errorf("String/StdDev: %q %v", s.String(), s.StdDev)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
}

func TestPropertySummaryOrdering(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, b := range raw {
			xs[i] = float64(b)
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 &&
			s.P75 <= s.P90 && s.P90 <= s.Max &&
			s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
