package stats

import (
	"fmt"
	"math"
	"strings"
)

// Series is a named curve for ASCII plotting, one per algorithm in the
// paper's figures.
type Series struct {
	Name   string
	Points []Point
}

// RenderCDFs renders one or more CDF curves as an ASCII chart of the
// given width and height, the terminal stand-in for the paper's
// matplotlib figures. Each series is drawn with its own glyph; a legend
// follows the chart.
func RenderCDFs(series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}

	// Establish shared x-range across all series; y is always [0,1].
	xlo, xhi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			if p.X < xlo {
				xlo = p.X
			}
			if p.X > xhi {
				xhi = p.X
			}
		}
	}
	if math.IsInf(xlo, 1) || xlo == xhi {
		return "(no data)\n"
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			col := int((p.X - xlo) / (xhi - xlo) * float64(width-1))
			row := height - 1 - int(p.Y*float64(height-1))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			grid[row][col] = g
		}
	}

	var b strings.Builder
	b.WriteString("P(X<=x)\n")
	for i, line := range grid {
		yv := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%5.2f |%s|\n", yv, string(line))
	}
	fmt.Fprintf(&b, "      %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&b, "      %-*.4g%*.4g\n", width/2, xlo, width/2+2, xhi)
	for si, s := range series {
		fmt.Fprintf(&b, "      [%c] %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// RenderHistogram renders bin counts as a horizontal ASCII bar chart,
// used for the Fig. 2 fluctuation statistics.
func RenderHistogram(edges []float64, counts []int, width int) string {
	if len(counts) == 0 || len(edges) != len(counts)+1 {
		return "(no data)\n"
	}
	if width < 8 {
		width = 8
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		maxCount = 1
	}
	var b strings.Builder
	for i, c := range counts {
		barLen := int(float64(c) / float64(maxCount) * float64(width))
		fmt.Fprintf(&b, "[%8.3g, %8.3g) %-*s %d\n",
			edges[i], edges[i+1], width, strings.Repeat("#", barLen), c)
	}
	return b.String()
}
