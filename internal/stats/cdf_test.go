package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	tests := []struct {
		x    float64
		want float64
	}{
		{x: 0.5, want: 0},
		{x: 1, want: 0.25},
		{x: 2.5, want: 0.5},
		{x: 4, want: 1},
		{x: 100, want: 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
	if got := c.At(5); got != 0 {
		t.Errorf("At = %v, want 0", got)
	}
	if got := c.Quantile(0.5); got != 0 {
		t.Errorf("Quantile = %v, want 0", got)
	}
	if pts := c.Points(10); pts != nil {
		t.Errorf("Points = %v, want nil", pts)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	tests := []struct {
		q    float64
		want float64
	}{
		{q: 0.2, want: 10},
		{q: 0.5, want: 30}, // rounds to middle rank
		{q: 1.0, want: 50},
		{q: -1, want: 10},  // clamped low
		{q: 2.0, want: 50}, // clamped high
	}
	for _, tt := range tests {
		if got := c.Quantile(tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	c := NewCDF(xs)
	xs[0] = 100
	if got := c.At(3); !almostEqual(got, 1, 1e-12) {
		t.Errorf("CDF aliased caller slice: At(3) = %v, want 1", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("len(Points) = %d, want 11", len(pts))
	}
	if pts[0].X != 0 || pts[len(pts)-1].X != 9 {
		t.Errorf("x-range = [%v, %v], want [0, 9]", pts[0].X, pts[len(pts)-1].X)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Errorf("CDF points not monotone at %d: %v < %v", i, pts[i].Y, pts[i-1].Y)
		}
	}
	// Degenerate single-value sample.
	one := NewCDF([]float64{7, 7, 7})
	pts = one.Points(5)
	if len(pts) != 1 || pts[0].Y != 1 {
		t.Errorf("degenerate Points = %v, want single (7,1)", pts)
	}
}

func TestHistogram(t *testing.T) {
	edges, counts, err := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 6 || len(counts) != 5 {
		t.Fatalf("shape = (%d edges, %d counts), want (6, 5)", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total = %d, want 10", total)
	}
	if _, _, err := Histogram(nil, 5); err != ErrEmpty {
		t.Errorf("Histogram(nil) err = %v, want ErrEmpty", err)
	}
	// Constant data widens the range rather than dividing by zero.
	if _, counts, err := Histogram([]float64{2, 2, 2}, 3); err != nil || counts[0] != 3 {
		t.Errorf("constant histogram = %v err %v, want all in bin 0", counts, err)
	}
}

func TestPropertyCDFMonotone(t *testing.T) {
	f := func(xs []float64, probes []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		c := NewCDF(clean)
		sort.Float64s(probes)
		prev := -1.0
		for _, p := range probes {
			if math.IsNaN(p) {
				continue
			}
			v := c.At(p)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRenderCDFs(t *testing.T) {
	c1 := NewCDF([]float64{1, 2, 3})
	c2 := NewCDF([]float64{2, 3, 4})
	out := RenderCDFs([]Series{
		{Name: "alpha", Points: c1.Points(20)},
		{Name: "beta", Points: c2.Points(20)},
	}, 40, 10)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Errorf("legend missing from render:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("series glyphs missing from render:\n%s", out)
	}
	if got := RenderCDFs(nil, 40, 10); got != "(no data)\n" {
		t.Errorf("RenderCDFs(nil) = %q", got)
	}
}

func TestRenderHistogram(t *testing.T) {
	edges, counts, err := Histogram([]float64{1, 1, 2, 3, 3, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderHistogram(edges, counts, 20)
	if !strings.Contains(out, "#") {
		t.Errorf("bars missing:\n%s", out)
	}
	if got := RenderHistogram(nil, nil, 20); got != "(no data)\n" {
		t.Errorf("RenderHistogram(nil) = %q", got)
	}
}
