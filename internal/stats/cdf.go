package stats

import (
	"sort"
)

// CDF is an empirical cumulative distribution function over a sample.
// The zero value is unusable; construct one with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs. The input is
// copied, so the caller may keep mutating xs.
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len returns the sample size behind the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of the sample at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of the first element strictly greater than x.
	idx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with P(X <= v) >= q,
// for q in (0, 1]. Out-of-range q values are clamped.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q > 1 {
		q = 1
	}
	idx := int(q*float64(len(c.sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Points returns up to n evenly spaced (x, P(X<=x)) points spanning the
// sample range, suitable for plotting the CDF curve as in Figs. 3 and 4.
// It returns nil for an empty CDF or n < 2.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n < 2 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	if lo == hi {
		return []Point{{X: lo, Y: 1}}
	}
	pts := make([]Point, 0, n)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		x := lo + step*float64(i)
		pts = append(pts, Point{X: x, Y: c.At(x)})
	}
	return pts
}

// Point is a single (x, y) sample of a curve.
type Point struct {
	X, Y float64
}

// Histogram counts the sample into nbins equal-width bins over
// [min, max]. It returns bin edges (len nbins+1) and counts (len nbins).
// Values exactly at the upper edge fall into the last bin.
func Histogram(xs []float64, nbins int) (edges []float64, counts []int, err error) {
	if len(xs) == 0 {
		return nil, nil, ErrEmpty
	}
	if nbins < 1 {
		nbins = 1
	}
	lo, hi, err := MinMax(xs)
	if err != nil {
		return nil, nil, err
	}
	if lo == hi {
		hi = lo + 1
	}
	edges = make([]float64, nbins+1)
	width := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + width*float64(i)
	}
	counts = make([]int, nbins)
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx >= nbins {
			idx = nbins - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	return edges, counts, nil
}
