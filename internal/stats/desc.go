// Package stats provides the descriptive-statistics toolkit used across
// the reproduction: means, deviations, fluctuation ratios (sigma/mu),
// empirical CDFs, percentiles, histograms, and lightweight ASCII
// rendering for regenerating the paper's figures on a terminal.
//
// The paper groups users by the fluctuation ratio sigma/mu of their
// demand series (Fig. 2) and reports cost distributions as CDFs
// (Figs. 3 and 4); this package implements exactly those primitives.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty data set")

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the sum of xs using Kahan compensated summation so that
// long hourly cost series (tens of thousands of terms) do not drift.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mu := Mean(xs)
	var acc float64
	for _, x := range xs {
		d := x - mu
		acc += d * d
	}
	return acc / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// FluctuationRatio returns sigma/mu, the paper's measure of demand
// fluctuation (Fig. 2). It returns +Inf when the mean is zero but the
// deviation is not, and 0 for an all-zero or empty series.
func FluctuationRatio(xs []float64) float64 {
	mu := Mean(xs)
	sigma := StdDev(xs)
	if mu == 0 {
		if sigma == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sigma / mu
}

// MinMax returns the smallest and largest values in xs.
// It returns ErrEmpty when xs is empty.
func MinMax(xs []float64) (minV, maxV float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV, nil
}

// Percentile returns the q-th percentile (q in [0,100]) of xs using
// linear interpolation between closest ranks. It returns ErrEmpty when
// xs is empty and an error when q is out of range.
func Percentile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := q / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Normalize divides every element of xs by base and returns the result
// as a new slice. The paper normalizes every algorithm's cost to the
// Keep-Reserved baseline this way. Normalize returns an error when base
// is zero or not finite.
func Normalize(xs []float64, base float64) ([]float64, error) {
	if base == 0 || math.IsNaN(base) || math.IsInf(base, 0) {
		return nil, errors.New("stats: normalization base must be finite and non-zero")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out, nil
}

// FractionBelow returns the fraction of xs strictly below the threshold.
// The paper reports results like "more than 60% of users reduce their
// costs", i.e. the fraction of normalized costs below 1.0.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var n int
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionAbove returns the fraction of xs strictly above the threshold.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var n int
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
