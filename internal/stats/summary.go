package stats

import (
	"fmt"
)

// Summary is a five-number-plus summary of a sample.
type Summary struct {
	// N is the sample size.
	N int
	// Min, P25, Median, P75, P90, Max are order statistics.
	Min, P25, Median, P75, P90, Max float64
	// Mean and StdDev are the moments.
	Mean, StdDev float64
}

// Summarize computes a Summary. It returns ErrEmpty for empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
	}
	var err error
	if s.Min, s.Max, err = MinMax(xs); err != nil {
		return Summary{}, err
	}
	for _, q := range []struct {
		p    float64
		dest *float64
	}{
		{p: 25, dest: &s.P25},
		{p: 50, dest: &s.Median},
		{p: 75, dest: &s.P75},
		{p: 90, dest: &s.P90},
	} {
		v, err := Percentile(xs, q.p)
		if err != nil {
			return Summary{}, err
		}
		*q.dest = v
	}
	return s, nil
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g p25=%.4g med=%.4g p75=%.4g p90=%.4g max=%.4g mean=%.4g sd=%.4g",
		s.N, s.Min, s.P25, s.Median, s.P75, s.P90, s.Max, s.Mean, s.StdDev)
}
